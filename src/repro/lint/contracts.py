"""Runtime invariant contracts for the simulator.

The static rules in :mod:`repro.lint.rules` keep *sources* deterministic;
this module keeps *running state* consistent.  It provides cheap,
assert-style checks that the simulation substrate wires into its hot
lifecycle points (per-invocation, per-flush, per-replay -- never per
access):

* :func:`check_access_stats` / :func:`check_hierarchy_stats` -- cache and
  TLB counters balance (hits + misses == accesses, nothing negative,
  prefetch hits bounded by demand traffic);
* :func:`check_topdown` -- the five Top-Down components are non-negative
  and sum to the reported total cycles within tolerance;
* :func:`check_invocation` -- both of the above for one
  :class:`repro.sim.core.InvocationResult`;
* :func:`check_metadata_buffer` / :func:`check_replay_counts` -- Jukebox
  metadata entries are well-formed and the replayed entry count matches
  what the record phase wrote;
* :func:`check` -- the generic hook structural checks (e.g.
  ``SetAssocCache.check_invariants``) build on.

All checks are duck-typed so this module never imports simulator classes
(no import cycles) and raise
:class:`repro.errors.ContractViolationError` on failure.  Checking can be
suspended globally with :func:`set_enabled` or the :func:`disabled`
context manager (useful for micro-benchmarks), but the default simulator
paths run with contracts on.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Iterator

from repro.errors import ContractViolationError

_ENABLED = True

#: Counter fields of an ``AccessStats`` that must never go negative.
_ACCESS_FIELDS = (
    "inst_hits",
    "inst_misses",
    "data_hits",
    "data_misses",
    "inst_prefetch_hits",
    "data_prefetch_hits",
    "prefetched_unused",
)

#: ``MemoryTraffic`` classes that must never go negative.  The two
#: ``prefetch_*`` classes are deliberately absent: useful-prefetch credits
#: re-classify bytes between them after the fact, so they are only
#: meaningful in aggregate (see ``MainMemory.credit_useful_prefetch``).
_TRAFFIC_FIELDS = (
    "demand_inst",
    "demand_data",
    "metadata_record",
    "metadata_replay",
)

#: The five leaf categories of a ``TopDownBreakdown``.
_TOPDOWN_FIELDS = (
    "retiring",
    "fetch_latency",
    "fetch_bandwidth",
    "bad_speculation",
    "backend_bound",
)


def enabled() -> bool:
    """Whether contract checks are currently active."""
    return _ENABLED


def set_enabled(flag: bool) -> bool:
    """Globally enable/disable contract checks; returns the previous state."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(flag)
    return previous


@contextmanager
def disabled() -> Iterator[None]:
    """Context manager that suspends contract checking inside its body."""
    previous = set_enabled(False)
    try:
        yield
    finally:
        set_enabled(previous)


def check(condition: bool, message: str) -> None:
    """Generic contract hook: raise unless ``condition`` holds."""
    if _ENABLED and not condition:
        raise ContractViolationError(message)


# ----------------------------------------------------------------------
# Statistics contracts
# ----------------------------------------------------------------------

def check_access_stats(stats, name: str = "") -> None:
    """Validate one cache/TLB ``AccessStats`` object."""
    if not _ENABLED:
        return
    label = name or "access stats"
    for field_name in _ACCESS_FIELDS:
        value = getattr(stats, field_name)
        if value < 0:
            raise ContractViolationError(
                f"{label}: counter {field_name} is negative ({value})"
            )
    if stats.hits + stats.misses != stats.accesses:
        raise ContractViolationError(
            f"{label}: hits ({stats.hits}) + misses ({stats.misses}) != "
            f"accesses ({stats.accesses})"
        )
    inst_demand = stats.inst_hits + stats.inst_misses
    if stats.inst_prefetch_hits > inst_demand:
        raise ContractViolationError(
            f"{label}: {stats.inst_prefetch_hits} instruction prefetch hits "
            f"exceed {inst_demand} instruction demand accesses"
        )
    data_demand = stats.data_hits + stats.data_misses
    if stats.data_prefetch_hits > data_demand:
        raise ContractViolationError(
            f"{label}: {stats.data_prefetch_hits} data prefetch hits exceed "
            f"{data_demand} data demand accesses"
        )


def check_memory_traffic(traffic, name: str = "memory traffic") -> None:
    """Validate a ``MemoryTraffic`` accounting object."""
    if not _ENABLED:
        return
    for field_name in _TRAFFIC_FIELDS:
        value = getattr(traffic, field_name)
        if value < 0:
            raise ContractViolationError(
                f"{name}: traffic class {field_name} is negative ({value})"
            )
    if traffic.prefetch_useful < 0:
        raise ContractViolationError(
            f"{name}: prefetch_useful is negative ({traffic.prefetch_useful})"
        )


def check_hierarchy_stats(stats, name: str = "hierarchy") -> None:
    """Validate every level of a ``HierarchyStats`` plus its DRAM traffic."""
    if not _ENABLED:
        return
    for level, level_stats in stats.levels().items():
        check_access_stats(level_stats, name=f"{name}.{level}")
    check_memory_traffic(stats.memory, name=f"{name}.memory")


def check_topdown(breakdown, rel_tol: float = 1e-9,
                  abs_tol: float = 1e-6) -> None:
    """Validate a ``TopDownBreakdown``: non-negative components that sum to
    the reported total cycles within tolerance."""
    if not _ENABLED:
        return
    component_sum = 0.0
    for field_name in _TOPDOWN_FIELDS:
        value = getattr(breakdown, field_name)
        if value < -abs_tol:
            raise ContractViolationError(
                f"Top-Down component {field_name} is negative ({value})"
            )
        component_sum += value
    total = breakdown.total_cycles
    if not math.isclose(component_sum, total, rel_tol=rel_tol,
                        abs_tol=abs_tol):
        raise ContractViolationError(
            f"Top-Down components sum to {component_sum} but total_cycles "
            f"reports {total}"
        )
    frontend = breakdown.frontend_bound
    expected_frontend = breakdown.fetch_latency + breakdown.fetch_bandwidth
    if not math.isclose(frontend, expected_frontend, rel_tol=rel_tol,
                        abs_tol=abs_tol):
        raise ContractViolationError(
            f"frontend_bound ({frontend}) != fetch_latency + fetch_bandwidth "
            f"({expected_frontend})"
        )


def check_invocation(result) -> None:
    """Validate one ``InvocationResult`` as produced by ``LukewarmCore.run``."""
    if not _ENABLED:
        return
    if result.instructions < 0:
        raise ContractViolationError(
            f"invocation retired a negative instruction count "
            f"({result.instructions})"
        )
    check_topdown(result.topdown)
    check_hierarchy_stats(result.stats, name="invocation stats")
    for level, count in result.fetch_sources.items():
        if count < 0:
            raise ContractViolationError(
                f"fetch source {level!r} has negative count ({count})"
            )


# ----------------------------------------------------------------------
# Sweep-engine contracts
# ----------------------------------------------------------------------

#: Counter fields of a ``SweepStats`` that must never go negative.
_SWEEP_FIELDS = ("jobs", "hits", "misses", "stores", "failures", "retries")


def check_sweep_stats(stats, name: str = "sweep stats") -> None:
    """Validate an engine ``SweepStats`` object.

    Called at the end of every sweep -- including sweeps whose executor
    raised, so the invariants are inequalities over what *completed*:
    every hit or miss maps to a distinct submitted job, only misses can
    store results, and only misses can fail.
    """
    if not _ENABLED:
        return
    for field_name in _SWEEP_FIELDS:
        value = getattr(stats, field_name)
        if value < 0:
            raise ContractViolationError(
                f"{name}: counter {field_name} is negative ({value})"
            )
    if stats.hits + stats.misses > stats.jobs:
        raise ContractViolationError(
            f"{name}: hits ({stats.hits}) + misses ({stats.misses}) exceed "
            f"submitted jobs ({stats.jobs})"
        )
    if stats.stores > stats.misses:
        raise ContractViolationError(
            f"{name}: stored {stats.stores} results but only "
            f"{stats.misses} cells were simulated"
        )
    if stats.failures > stats.misses:
        raise ContractViolationError(
            f"{name}: {stats.failures} failures exceed the {stats.misses} "
            f"cells that were simulated"
        )


# ----------------------------------------------------------------------
# Observability contracts
# ----------------------------------------------------------------------

def check_trace_event(event, name: str = "trace event") -> None:
    """Validate one emitted ``TraceEvent`` (duck-typed, no obs import).

    The schema itself is enforced by ``repro.obs.records.validate_event``;
    this contract guards the structural invariants the tracer relies on:
    a non-negative sequence number, a dotted event kind, and a payload
    stored as sorted ``(key, value)`` pairs so records compare and
    serialize deterministically.
    """
    if not _ENABLED:
        return
    if event.seq < 0:
        raise ContractViolationError(
            f"{name}: sequence number is negative ({event.seq})"
        )
    if not isinstance(event.kind, str) or "." not in event.kind:
        raise ContractViolationError(
            f"{name}: kind must be a dotted string, got {event.kind!r}"
        )
    keys = [key for key, _ in event.fields]
    if keys != sorted(keys):
        raise ContractViolationError(
            f"{name}: payload keys are not sorted ({keys!r}); records "
            f"would serialize nondeterministically"
        )


# ----------------------------------------------------------------------
# Jukebox metadata contracts
# ----------------------------------------------------------------------

def check_metadata_entry(entry, lines_per_region: int,
                         name: str = "metadata entry") -> None:
    """Validate one ``(region_pointer, access_vector)`` record."""
    if not _ENABLED:
        return
    region, vector = entry
    if region < 0:
        raise ContractViolationError(
            f"{name}: negative region pointer ({region})"
        )
    if vector <= 0:
        raise ContractViolationError(
            f"{name}: access vector must encode at least one line "
            f"(got {vector:#x})"
        )
    if vector >> lines_per_region:
        raise ContractViolationError(
            f"{name}: access vector {vector:#x} wider than "
            f"{lines_per_region} lines per region"
        )


def check_metadata_buffer(buffer, name: str = "metadata buffer") -> None:
    """Validate a whole ``MetadataBuffer`` against its byte limit."""
    if not _ENABLED:
        return
    if buffer.dropped_entries < 0:
        raise ContractViolationError(
            f"{name}: negative dropped-entry count ({buffer.dropped_entries})"
        )
    if len(buffer) > buffer.capacity_entries:
        raise ContractViolationError(
            f"{name}: holds {len(buffer)} entries but only "
            f"{buffer.capacity_entries} fit under the {buffer.limit_bytes}B "
            f"limit register"
        )
    lines_per_region = buffer.geometry.lines_per_region
    for entry in buffer:
        check_metadata_entry(entry, lines_per_region, name=name)


def check_replay_counts(entries_replayed: int, recorded_entries: int,
                        lines_prefetched: int, duplicates_skipped: int,
                        unique_blocks: int) -> None:
    """Record/replay bookkeeping must agree: every recorded entry was
    replayed exactly once and every expanded line was either issued or
    de-duplicated."""
    if not _ENABLED:
        return
    if entries_replayed != recorded_entries:
        raise ContractViolationError(
            f"replay walked {entries_replayed} entries but the record phase "
            f"wrote {recorded_entries}"
        )
    if lines_prefetched != unique_blocks:
        raise ContractViolationError(
            f"replay issued {lines_prefetched} line fills but expanded "
            f"{unique_blocks} unique blocks"
        )
    if duplicates_skipped < 0:
        raise ContractViolationError(
            f"negative duplicate-line count ({duplicates_skipped})"
        )
