"""The Jukebox facade: per-function-instance record/replay management.

Mirrors the OS bookkeeping of Sec. 3.4.1: every function instance owns two
metadata buffers.  On each invocation the OS programs the *replay* registers
with the buffer written by the previous invocation, and the *record*
registers with the other buffer; the buffers swap roles when the invocation
completes.  Thus invocation N replays the instruction working set observed
at invocation N-1.

Driving pattern (see :mod:`repro.experiments.common`)::

    jb = Jukebox(machine.jukebox)
    for trace in invocations:
        core.flush_microarch_state()        # lukewarm baseline
        jb.begin_invocation(core.hierarchy)
        result = core.run(trace)
        replay_stats = jb.end_invocation(core.hierarchy, result)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.metadata import MetadataBuffer
from repro.core.recorder import JukeboxRecorder
from repro.core.regions import RegionGeometry
from repro.core.replayer import (
    JukeboxReplayer,
    ReplayStats,
    collect_outcomes,
    finalize_overprediction,
)
from repro.errors import SimulationError
from repro.sim.core import InvocationResult
from repro.sim.hierarchy import MemoryHierarchy
from repro.sim.params import JukeboxParams


@dataclass
class JukeboxInvocationReport:
    """Per-invocation Jukebox outcome: replay effects plus record volume."""

    replay: ReplayStats
    recorded_entries: int
    recorded_bytes: int
    recorded_dropped: int


class Jukebox:
    """Per-instance Jukebox state machine (record + replay phases)."""

    def __init__(self, params: JukeboxParams, replay_target: str = "l2",
                 replay_bandwidth_share: float = 1.0) -> None:
        self.params = params
        self.replay_target = replay_target
        self.replay_bandwidth_share = replay_bandwidth_share
        self.geometry = RegionGeometry(params.region_size)
        #: Metadata written by the previous invocation (replay source).
        self._replay_buffer: Optional[MetadataBuffer] = None
        self._recorder: Optional[JukeboxRecorder] = None
        self._replayer: Optional[JukeboxReplayer] = None
        self.invocations = 0
        self.reports: List[JukeboxInvocationReport] = []

    def _new_buffer(self) -> MetadataBuffer:
        return MetadataBuffer(geometry=self.geometry,
                              limit_bytes=self.params.metadata_bytes)

    def begin_invocation(self, hierarchy: MemoryHierarchy,
                         start_cycle: float = 0.0) -> ReplayStats:
        """OS scheduling hook: trigger replay, then arm recording."""
        if self._recorder is not None and self._recorder.active:
            raise SimulationError(
                "begin_invocation called while an invocation is in flight"
            )
        self._replayer = JukeboxReplayer(hierarchy)
        if self._replay_buffer is not None and len(self._replay_buffer) > 0:
            self._replayer.replay(self._replay_buffer, start_cycle,
                                  target=self.replay_target,
                                  bandwidth_share=self.replay_bandwidth_share)
        self._recorder = JukeboxRecorder(
            self.params, self._new_buffer(), memory=hierarchy.memory
        )
        hierarchy.record_hook = self._recorder
        return self._replayer.stats

    def end_invocation(self, hierarchy: MemoryHierarchy,
                       result: InvocationResult) -> JukeboxInvocationReport:
        """Descheduling hook: finish recording, swap buffers, collect stats."""
        if self._recorder is None or self._replayer is None:
            raise SimulationError("end_invocation without begin_invocation")
        recorded = self._recorder.finish()
        hierarchy.record_hook = None
        replay_stats = collect_outcomes(
            self._replayer.stats, hierarchy, result.stats.l2,
            result.fetch_sources,
        )
        replay_stats = finalize_overprediction(replay_stats, self._replayer)
        report = JukeboxInvocationReport(
            replay=replay_stats,
            recorded_entries=len(recorded),
            recorded_bytes=recorded.size_bytes,
            recorded_dropped=recorded.dropped_entries,
        )
        self.reports.append(report)
        # The buffer just recorded becomes the next invocation's replay
        # source (Sec. 3.4.1's pointer swap in task_struct).
        self._replay_buffer = recorded
        self._recorder = None
        self.invocations += 1
        return report

    @property
    def has_replay_metadata(self) -> bool:
        return self._replay_buffer is not None and len(self._replay_buffer) > 0

    @property
    def replay_metadata_bytes(self) -> int:
        return self._replay_buffer.size_bytes if self._replay_buffer else 0
