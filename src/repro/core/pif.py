"""PIF: Proactive Instruction Fetch (Ferdman et al., MICRO 2011) baseline.

PIF is the state-of-the-art temporal-streaming instruction prefetcher the
paper compares against (Sec. 5.5).  It records the sequence of retired
instruction-block addresses into stream storage, with an index mapping a
trigger address to the most recent stream starting there.  At run time it
follows the recorded stream with a finite lookahead, prefetching into the
*L1-I*; whenever the observed fetch stream diverges from the replayed one,
it stops and *re-indexes*, which is exactly what prevents it from running
far enough ahead to hide DRAM latency for lukewarm invocations.

Two configurations, as in the paper:

* ``PIF``: 49KB index + 164KB stream storage, state does **not** survive
  across invocations (like all other microarchitectural state, it is
  obliterated by interleaving), so only intra-invocation reuse helps;
* ``PIF-ideal``: unlimited index and stream storage that persist across
  invocations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.sim.hierarchy import MemoryHierarchy
from repro.units import KB, LINE_SHIFT

#: Bytes of storage per recorded stream element (a compacted instruction
#: block address); used to convert the paper's KB budgets into entries.
_STREAM_ENTRY_BYTES = 7
_INDEX_ENTRY_BYTES = 6


@dataclass(frozen=True)
class PIFParams:
    """PIF configuration (Sec. 5.5 uses the parameters from [16])."""

    index_bytes: int = 49 * KB
    stream_bytes: int = 164 * KB
    lookahead: int = 12
    persistent: bool = False
    unlimited: bool = False

    @property
    def index_capacity(self) -> int:
        return self.index_bytes // _INDEX_ENTRY_BYTES

    @property
    def stream_capacity(self) -> int:
        return self.stream_bytes // _STREAM_ENTRY_BYTES


def pif_ideal_params(lookahead: int = 12) -> PIFParams:
    """The PIF-ideal configuration: unlimited, persistent metadata."""
    return PIFParams(index_bytes=1 << 30, stream_bytes=1 << 30,
                     lookahead=lookahead, persistent=True, unlimited=True)


@dataclass
class PIFStats:
    fetches_observed: int = 0
    prefetches_issued: int = 0
    reindexes: int = 0
    stream_follows: int = 0
    index_misses: int = 0
    prefetches_squashed: int = 0


class PIF:
    """Temporal-streaming record/replay prefetcher targeting the L1-I."""

    def __init__(self, params: PIFParams,
                 hierarchy: Optional[MemoryHierarchy] = None) -> None:
        self.params = params
        self.hierarchy = hierarchy
        self.stats = PIFStats()
        #: Recorded stream of block numbers (history buffer).
        self._stream: List[int] = []
        #: Block number -> most recent stream position.
        self._index: Dict[int, int] = {}
        #: Replay pointer into the stream (None = not following).
        self._pointer: Optional[int] = None
        self._last_block: Optional[int] = None

    # -- RecordHook interface -------------------------------------------

    def on_fetch(self, vaddr: int, cycle: float) -> None:
        """Observe a retired/fetched instruction block: train and replay."""
        block = vaddr >> LINE_SHIFT
        if block == self._last_block:
            return
        self._last_block = block
        self.stats.fetches_observed += 1
        # Follow first so the re-index lookup sees the *previous* stream
        # occurrence of this block, then record the new occurrence.
        self._follow(block, cycle)
        self._record(block)

    def on_l2_inst_miss(self, vaddr: int, cycle: float) -> None:
        """PIF trains on the retired-instruction stream, not L2 misses."""

    # -- record ----------------------------------------------------------

    def _record(self, block: int) -> None:
        stream = self._stream
        if len(stream) >= self.params.stream_capacity:
            # Circular history: drop the oldest half (coarse wrap model that
            # keeps positions monotonic without renumbering every entry).
            drop = len(stream) // 2
            del stream[:drop]
            threshold = drop
            self._index = {b: p - drop for b, p in self._index.items()
                           if p >= threshold}
            if self._pointer is not None:
                self._pointer = max(0, self._pointer - drop)
        stream.append(block)
        if len(self._index) < self.params.index_capacity or block in self._index:
            self._index[block] = len(stream) - 1

    # -- replay ----------------------------------------------------------

    def _follow(self, block: int, cycle: float) -> None:
        ptr = self._pointer
        stream = self._stream
        if ptr is not None:
            # Accept the demand block if it appears within a small window
            # ahead of the pointer (minor reordering tolerance).
            window_end = min(len(stream), ptr + 4)
            matched = None
            for i in range(ptr, window_end):
                if stream[i] == block:
                    matched = i
                    break
            if matched is not None:
                self._pointer = matched + 1
                self.stats.stream_follows += 1
                self._issue_lookahead(cycle)
                return
            # Divergence: the replayed stream was wrong.  PIF stops
            # prefetching and re-indexes (Sec. 5.5); everything issued for
            # the dead stream -- in-flight fills and installed-but-unused
            # lines -- is squashed.  This is the mechanism that prevents
            # PIF from running far enough ahead to hide DRAM latency.
            self.stats.reindexes += 1
            self._pointer = None
            self._squash()
        # Re-index: find the most recent stream starting at this block.
        pos = self._index.get(block)
        if pos is not None and pos < len(stream):
            self._pointer = pos + 1
            self._issue_lookahead(cycle)
        else:
            self.stats.index_misses += 1

    def _issue_lookahead(self, cycle: float) -> None:
        hier = self.hierarchy
        if hier is None or self._pointer is None:
            return
        fills: List[Tuple[float, int]] = []
        end = min(len(self._stream), self._pointer + self.params.lookahead)
        for i in range(self._pointer, end):
            block = self._stream[i]
            if hier.l1i.contains(block):
                continue
            if hier.l1i_fills.completion_of(block) is not None:
                continue
            latency, _from_dram = hier.prefetch_source_latency(block)
            fills.append((cycle + latency, block))
            self.stats.prefetches_issued += 1
        if fills:
            fills.sort(key=lambda item: item[0])
            hier.schedule_l1i_prefetches(fills)

    def _squash(self) -> None:
        hier = self.hierarchy
        if hier is None:
            return
        hier.l1i_fills.clear()
        squashed = hier.l1i.invalidate_unused_prefetches()
        self.stats.prefetches_squashed += squashed

    # -- lifecycle ---------------------------------------------------------

    def flush(self) -> None:
        """Interleaving obliterated the on-chip state.  Non-persistent PIF
        loses everything; PIF-ideal keeps its metadata but the replay
        pointer (a core register) still resets."""
        self._pointer = None
        self._last_block = None
        if not self.params.persistent:
            self._stream.clear()
            self._index.clear()
