"""The Code Region Reference Buffer (CRRB).

A small fully-associative FIFO that coalesces L2 instruction misses to the
same code region before the entry is written to the in-memory metadata
buffer (Sec. 3.2, Fig. 7a).  Key properties mirrored from the paper:

* lookup by region virtual address; hit sets one bit in the access vector;
* miss evicts the *oldest* entry (FIFO) and allocates a new one;
* an evicted entry is immutable -- a later miss to the same region creates
  a *new* entry, so a region may appear multiple times in the recorded
  trace (this redundancy is what Fig. 8's metadata-size study measures).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple

from repro.core.regions import RegionGeometry
from repro.errors import ConfigurationError

#: ``(region_pointer, access_vector)`` as stored in memory.
Entry = Tuple[int, int]


class CRRB:
    """Fully-associative FIFO coalescing buffer."""

    def __init__(self, entries: int, geometry: RegionGeometry) -> None:
        if entries < 1:
            raise ConfigurationError("CRRB needs at least one entry")
        self.capacity = entries
        self.geometry = geometry
        #: region -> access vector, insertion-ordered (FIFO).
        self._entries: "OrderedDict[int, int]" = OrderedDict()
        self.hits = 0
        self.allocations = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def record(self, vaddr: int) -> Optional[Entry]:
        """Record an L2 instruction miss at virtual address ``vaddr``.

        Returns the entry evicted to make room, or None.  Note the FIFO
        order is *allocation* order: hits do not refresh an entry's age.
        """
        geo = self.geometry
        region = geo.region_of(vaddr)
        bit = 1 << geo.line_offset(vaddr)
        if region in self._entries:
            self._entries[region] |= bit
            self.hits += 1
            return None
        evicted: Optional[Entry] = None
        if len(self._entries) >= self.capacity:
            evicted = self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[region] = bit
        self.allocations += 1
        return evicted

    def drain(self) -> List[Entry]:
        """Evict everything in FIFO order (end of the record phase)."""
        drained = list(self._entries.items())
        self.evictions += len(drained)
        self._entries.clear()
        return drained

    def flush(self) -> None:
        """Discard contents without draining (context obliteration)."""
        self._entries.clear()

    def occupancy_vector(self, region: int) -> Optional[int]:
        """The current access vector for ``region`` (None if absent)."""
        return self._entries.get(region)
