"""Code-region address math for Jukebox's spatio-temporal encoding.

A metadata entry describes one *code region*: a ``region pointer`` (the
upper bits of the region's virtual base address) plus an ``access vector``
with one bit per cache line in the region (Sec. 3.2).  With 48-bit virtual
addresses, 64B lines and 1KB regions an entry is 38 + 16 = 54 bits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import LINE_SHIFT, LINE_SIZE, VA_BITS, is_power_of_two, log2_int


@dataclass(frozen=True)
class RegionGeometry:
    """Derived constants for a given code-region size."""

    region_size: int

    def __post_init__(self) -> None:
        if not is_power_of_two(self.region_size) or self.region_size < LINE_SIZE:
            raise ConfigurationError(
                f"region size must be a power of two >= {LINE_SIZE}: "
                f"{self.region_size}"
            )

    @property
    def region_shift(self) -> int:
        return log2_int(self.region_size)

    @property
    def lines_per_region(self) -> int:
        return self.region_size // LINE_SIZE

    @property
    def pointer_bits(self) -> int:
        """Bits needed for the region pointer (48-bit VA, Sec. 3.2)."""
        return VA_BITS - self.region_shift

    @property
    def vector_bits(self) -> int:
        """Bits in the access vector: one per line in the region."""
        return self.lines_per_region

    @property
    def entry_bits(self) -> int:
        """Total bits per metadata entry (54 for the 1KB default)."""
        return self.pointer_bits + self.vector_bits

    def region_of(self, vaddr: int) -> int:
        """The region *number* (pointer value) containing ``vaddr``."""
        return vaddr >> self.region_shift

    def region_base(self, region: int) -> int:
        """The byte base address of region number ``region``."""
        return region << self.region_shift

    def line_offset(self, vaddr: int) -> int:
        """Index of the cache line within its region (access-vector bit)."""
        return (vaddr >> LINE_SHIFT) & (self.lines_per_region - 1)

    def expand(self, region: int, vector: int) -> "list[int]":
        """Return the block byte addresses encoded by ``(region, vector)``,
        in ascending line order."""
        base = self.region_base(region)
        return [base + i * LINE_SIZE
                for i in range(self.lines_per_region) if vector >> i & 1]
