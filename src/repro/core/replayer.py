"""Jukebox replay phase (Sec. 3.3, Fig. 7b).

On a new invocation the OS programs the replay base/limit registers and the
prefetch engine streams the metadata buffer from memory in the order it was
written.  For each entry it:

1. pushes the region's base address through the I-TLB (pre-populating code
   translations);
2. expands the access vector into full block addresses;
3. enqueues L2 prefetches for those blocks.

Timeliness is modeled through per-block *completion cycles*: the engine is
bandwidth-bound, issuing one line fill every ``LINE_SIZE/bytes_per_cycle``
cycles after an initial metadata-read latency.  The hierarchy merges demand
misses with in-flight fills (late prefetches) and installs completed fills
lazily as simulated time advances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.metadata import MetadataBuffer
from repro.lint import contracts
from repro.sim.hierarchy import MemoryHierarchy
from repro.units import LINE_SHIFT, LINE_SIZE, PAGE_SHIFT


@dataclass
class ReplayStats:
    """Accounting of one replay phase."""

    entries_replayed: int = 0
    lines_prefetched: int = 0
    duplicate_lines_skipped: int = 0
    tlb_warmed_pages: int = 0
    metadata_bytes_read: int = 0
    #: Demand-side outcomes filled in by :func:`collect_outcomes`.
    covered: int = 0
    covered_late: int = 0
    overpredicted: int = 0

    def coverage_fraction(self, baseline_l2_misses: int) -> float:
        if baseline_l2_misses <= 0:
            return 0.0
        return min(1.0, self.covered / baseline_l2_misses)


class JukeboxReplayer:
    """Replay-phase prefetch engine."""

    def __init__(self, hierarchy: MemoryHierarchy) -> None:
        self.hierarchy = hierarchy
        self.stats = ReplayStats()
        #: prefetch_useful bytes before this replay; used to attribute
        #: first-use credits (at any cache level) back to this replay.
        self._useful_bytes_before = hierarchy.stats.memory.prefetch_useful

    def replay(self, buffer: MetadataBuffer, start_cycle: float = 0.0,
               target: str = "l2",
               bandwidth_share: float = 1.0) -> ReplayStats:
        """Schedule the whole metadata buffer as prefetches.

        ``target`` selects the destination cache: ``"l2"`` is the paper's
        design (Sec. 3.1); ``"l1i"`` is the ablation of prefetching into the
        small L1-I instead.  ``bandwidth_share`` throttles the replay
        engine to a fraction of DRAM bandwidth (timeliness ablation).
        """
        if target not in ("l2", "l1i"):
            raise ValueError(f"unknown replay target {target!r}")
        if not 0.0 < bandwidth_share <= 1.0:
            raise ValueError(f"bandwidth share out of range: {bandwidth_share}")
        hier = self.hierarchy
        memory = hier.memory
        geometry = buffer.geometry
        stats = self.stats

        if len(buffer) == 0:
            return stats
        buffer.validate()
        entries_before = stats.entries_replayed

        metadata_bytes = buffer.size_bytes
        memory.metadata_read(metadata_bytes)
        stats.metadata_bytes_read += metadata_bytes

        fills: List[Tuple[float, int]] = []
        seen_blocks: set = set()
        cycles_per_line = memory.cycles_per_line / bandwidth_share
        # The first prefetch can issue once the first metadata line arrives.
        t = start_cycle + memory.params.row_hit_latency
        lines_issued = 0
        warmed: set = set()
        for region, vector in buffer:
            base = geometry.region_base(region)
            page = base >> PAGE_SHIFT
            if page not in warmed:
                warmed.add(page)
                hier.itlb.warm(page)
                stats.tlb_warmed_pages += 1
            for addr in geometry.expand(region, vector):
                block = addr >> LINE_SHIFT
                if block in seen_blocks:
                    # A region recorded twice: the second prefetch request
                    # hits in the L2 and is dropped without DRAM traffic.
                    stats.duplicate_lines_skipped += 1
                    continue
                seen_blocks.add(block)
                lines_issued += 1
                completion = t + lines_issued * cycles_per_line
                fills.append((completion, block))
            stats.entries_replayed += 1
        stats.lines_prefetched = lines_issued
        # Runtime contract: record counts must match replayed counts -- every
        # entry the record phase wrote is walked exactly once, and every
        # expanded line was either issued or de-duplicated (repro.lint).
        contracts.check_replay_counts(
            entries_replayed=stats.entries_replayed - entries_before,
            recorded_entries=len(buffer),
            lines_prefetched=lines_issued,
            duplicates_skipped=stats.duplicate_lines_skipped,
            unique_blocks=len(seen_blocks),
        )
        if target == "l2":
            hier.schedule_l2_prefetches(fills)
        else:
            # Ablation: prefetch into the L1-I.  The DRAM traffic is the
            # same; only the destination (and its tiny capacity) changes.
            for _ in fills:
                memory.prefetch_fetch()
            hier.schedule_l1i_prefetches(fills)
        return stats


def collect_outcomes(stats: ReplayStats, hierarchy: MemoryHierarchy,
                     l2_stats_delta, fetch_sources: Dict[str, int]) -> ReplayStats:
    """Fill demand-side replay outcomes after the invocation completed.

    ``l2_stats_delta`` is the per-invocation L2 :class:`AccessStats` delta;
    ``fetch_sources`` is :attr:`InvocationResult.fetch_sources`.
    """
    hierarchy.finish_invocation()
    stats.covered = l2_stats_delta.inst_prefetch_hits
    stats.covered_late = fetch_sources.get("prefetch_late", 0)
    return stats


def finalize_overprediction(stats: ReplayStats,
                            replayer: "JukeboxReplayer") -> ReplayStats:
    """Overpredicted = prefetched lines never demand-referenced anywhere.

    A prefetched line conflict-evicted from the L2 but later served from
    its LLC copy was still useful (its DRAM fetch replaced a demand fetch),
    so overprediction is counted from the first-use *credits* rather than
    from L2 evictions: every useful line was credited exactly once, at the
    level where it was first demand-referenced.
    """
    useful_bytes = (replayer.hierarchy.stats.memory.prefetch_useful
                    - replayer._useful_bytes_before)
    useful_lines = useful_bytes // LINE_SIZE
    stats.overpredicted = max(0, stats.lines_prefetched - useful_lines)
    return stats
