"""Dynamic per-function metadata sizing (Sec. 5.1's extension).

The paper notes Jukebox "is designed to seamlessly extend to dynamic
metadata sizes": the OS bookkeeping of Sec. 3.4.1 gains a size field, and
the scheduler assigns each function instance a buffer matched to its
working set (Go services need ~4-8KB, large Python/NodeJS runtimes the full
16KB or more).

:class:`MetadataSizer` implements the OS-side policy: observe the recorded
metadata volume (and whether the budget truncated it) over a window of
invocations, then recommend a page-granular budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.jukebox import JukeboxInvocationReport
from repro.errors import ConfigurationError
from repro.units import KB, PAGE_SIZE, align_up


@dataclass
class SizingDecision:
    """The sizer's recommendation for one function."""

    budget_bytes: int
    observed_p95_bytes: int
    truncating: bool
    samples: int

    @property
    def budget_pages(self) -> int:
        return self.budget_bytes // PAGE_SIZE


@dataclass
class MetadataSizer:
    """Recommends per-function metadata budgets from observed recordings.

    Policy: budget = p95 of observed recorded bytes x ``headroom``, rounded
    up to whole pages, clamped to [``min_bytes``, ``max_bytes``].  While a
    function's recordings are being truncated by its current budget the
    sizer doubles the recommendation instead (the observations are lower
    bounds in that regime).
    """

    headroom: float = 1.25
    min_bytes: int = 1 * PAGE_SIZE
    max_bytes: int = 16 * PAGE_SIZE  # 64KB: two pages beyond Broadwell's 32KB
    window: int = 32
    _observed: Dict[str, List[int]] = field(default_factory=dict)
    _truncated: Dict[str, bool] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.headroom < 1.0:
            raise ConfigurationError(f"headroom must be >= 1: {self.headroom}")
        if self.min_bytes > self.max_bytes:
            raise ConfigurationError("min budget exceeds max budget")

    def observe(self, function_id: str,
                report: JukeboxInvocationReport) -> None:
        """Feed one invocation's record-phase outcome."""
        samples = self._observed.setdefault(function_id, [])
        samples.append(report.recorded_bytes)
        if len(samples) > self.window:
            del samples[: len(samples) - self.window]
        self._truncated[function_id] = report.recorded_dropped > 0

    def recommend(self, function_id: str,
                  current_budget: int) -> SizingDecision:
        """Recommend a budget for the next scheduling epoch."""
        samples = self._observed.get(function_id, [])
        if not samples:
            return SizingDecision(budget_bytes=align_up(current_budget,
                                                        PAGE_SIZE),
                                  observed_p95_bytes=0,
                                  truncating=False, samples=0)
        ordered = sorted(samples)
        p95 = ordered[min(len(ordered) - 1, int(len(ordered) * 0.95))]
        if self._truncated.get(function_id, False):
            raw = current_budget * 2
        else:
            raw = int(p95 * self.headroom)
        budget = max(self.min_bytes,
                     min(self.max_bytes, align_up(raw, PAGE_SIZE)))
        return SizingDecision(budget_bytes=budget, observed_p95_bytes=p95,
                              truncating=self._truncated.get(function_id,
                                                             False),
                              samples=len(samples))

    def total_fleet_bytes(self, budgets: Dict[str, int]) -> int:
        """Aggregate metadata cost of a fleet (two buffers per instance)."""
        return 2 * sum(budgets.values())
