"""Jukebox metadata snapshotting (Sec. 3.4.2).

Under virtualization, Jukebox metadata lives in guest physical memory and
is therefore part of the VM state: if a function snapshotting technique
(Catalyzer / vHive-style) captures the instance *after* Jukebox recorded an
invocation, restoring the snapshot can immediately replay the metadata and
accelerate the otherwise fully cold first invocation of the restored
instance.

:class:`MetadataSnapshot` is a compact, byte-serializable image of one
metadata buffer; :func:`snapshot_jukebox` captures it from a live
:class:`~repro.core.jukebox.Jukebox` and :func:`restore_jukebox` builds a
fresh Jukebox whose first invocation replays the snapshotted working set.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.jukebox import Jukebox
from repro.core.metadata import MetadataBuffer
from repro.core.regions import RegionGeometry
from repro.errors import MetadataError
from repro.sim.params import JukeboxParams

#: Serialization header: magic, version, region size, entry count.
_HEADER = struct.Struct("<4sHII")
_MAGIC = b"JBX1"
#: One entry: region pointer (u64) + access vector (u64).  The on-disk
#: image is byte-aligned for simplicity; the *architectural* size remains
#: ``geometry.entry_bits`` per entry and is preserved separately.
_ENTRY = struct.Struct("<QQ")


@dataclass(frozen=True)
class MetadataSnapshot:
    """A point-in-time image of one instance's Jukebox replay metadata."""

    region_size: int
    entries: Tuple[Tuple[int, int], ...]
    #: Architectural metadata size (what the buffer occupied in memory).
    architectural_bytes: int

    def serialize(self) -> bytes:
        """Pack into a self-describing byte image (VM snapshot payload)."""
        blob = bytearray(_HEADER.pack(_MAGIC, 1, self.region_size,
                                      len(self.entries)))
        for region, vector in self.entries:
            blob += _ENTRY.pack(region, vector)
        return bytes(blob)

    @classmethod
    def deserialize(cls, blob: bytes) -> "MetadataSnapshot":
        if len(blob) < _HEADER.size:
            raise MetadataError("snapshot image truncated")
        magic, version, region_size, count = _HEADER.unpack_from(blob, 0)
        if magic != _MAGIC:
            raise MetadataError(f"bad snapshot magic {magic!r}")
        if version != 1:
            raise MetadataError(f"unsupported snapshot version {version}")
        expected = _HEADER.size + count * _ENTRY.size
        if len(blob) != expected:
            raise MetadataError(
                f"snapshot image has {len(blob)} bytes, expected {expected}")
        entries: List[Tuple[int, int]] = []
        offset = _HEADER.size
        for _ in range(count):
            region, vector = _ENTRY.unpack_from(blob, offset)
            entries.append((region, vector))
            offset += _ENTRY.size
        geometry = RegionGeometry(region_size)
        architectural = -(-count * geometry.entry_bits // 8)
        return cls(region_size=region_size, entries=tuple(entries),
                   architectural_bytes=architectural)

    @property
    def n_entries(self) -> int:
        return len(self.entries)

    def to_buffer(self, limit_bytes: int) -> MetadataBuffer:
        """Materialize as a replayable metadata buffer."""
        buffer = MetadataBuffer(geometry=RegionGeometry(self.region_size),
                                limit_bytes=limit_bytes)
        for entry in self.entries:
            buffer.append(entry)
        return buffer


def snapshot_jukebox(jukebox: Jukebox) -> Optional[MetadataSnapshot]:
    """Capture the instance's current replay metadata (None if empty)."""
    buffer = jukebox._replay_buffer
    if buffer is None or len(buffer) == 0:
        return None
    return MetadataSnapshot(
        region_size=jukebox.params.region_size,
        entries=tuple(buffer),
        architectural_bytes=buffer.size_bytes,
    )


def restore_jukebox(snapshot: MetadataSnapshot,
                    params: Optional[JukeboxParams] = None) -> Jukebox:
    """Build a fresh instance's Jukebox pre-armed with snapshot metadata.

    The restored instance's *first* invocation replays the snapshotted
    working set, turning a cold boot's instruction fetch into L2 hits.
    """
    if params is None:
        params = JukeboxParams(region_size=snapshot.region_size)
    if params.region_size != snapshot.region_size:
        raise MetadataError(
            f"snapshot region size {snapshot.region_size} does not match "
            f"configured {params.region_size}")
    jukebox = Jukebox(params)
    jukebox._replay_buffer = snapshot.to_buffer(params.metadata_bytes)
    return jukebox
