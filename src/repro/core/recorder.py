"""Jukebox record phase (Sec. 3.2, Fig. 7a).

The recorder sits logically at the L1-I: it observes L1-I misses that also
missed in the L2 (all L2 hits are filtered) and coalesces them through the
CRRB into the in-memory metadata buffer.  Evicted CRRB entries are written
to memory, bypassing the cache hierarchy; the write traffic is charged to
the ``metadata_record`` DRAM traffic class (Fig. 12).
"""

from __future__ import annotations

from typing import Optional

from repro.core.crrb import CRRB
from repro.core.metadata import MetadataBuffer
from repro.core.regions import RegionGeometry
from repro.sim.memory import MainMemory
from repro.sim.params import JukeboxParams


class JukeboxRecorder:
    """Record-phase logic; implements the hierarchy's record hook."""

    def __init__(self, params: JukeboxParams, buffer: MetadataBuffer,
                 memory: Optional[MainMemory] = None) -> None:
        self.params = params
        self.geometry = buffer.geometry
        self.buffer = buffer
        self.crrb = CRRB(params.crrb_entries, self.geometry)
        self.memory = memory
        self.l2_misses_seen = 0
        self.entries_written = 0
        self._active = True

    # -- RecordHook interface -------------------------------------------

    def on_l2_inst_miss(self, block_vaddr: int, cycle: float) -> None:
        """An L1-I miss returned from beyond the L2: record it."""
        if not self._active:
            return
        self.l2_misses_seen += 1
        evicted = self.crrb.record(block_vaddr)
        if evicted is not None:
            self._write_entry(evicted)

    #: Advertised to the columnar backend: bulk L1-hit execution stays
    #: legal while the recorder is installed (see RecordHook docs).
    fetch_is_noop = True

    def on_fetch(self, block_vaddr: int, cycle: float) -> None:
        """L1-I demand fetch: Jukebox's record logic ignores L2 hits."""

    # -- lifecycle -------------------------------------------------------

    def _write_entry(self, entry) -> None:
        if self.buffer.append(entry):
            self.entries_written += 1
            if self.memory is not None:
                self.memory.metadata_write(-(-self.geometry.entry_bits // 8))

    def finish(self) -> MetadataBuffer:
        """End of the invocation: drain the CRRB in FIFO order."""
        for entry in self.crrb.drain():
            self._write_entry(entry)
        self._active = False
        return self.buffer

    @property
    def active(self) -> bool:
        return self._active


def record_miss_stream(miss_vaddrs, params: JukeboxParams,
                       limit_bytes: Optional[int] = None) -> MetadataBuffer:
    """Run the record logic over a raw L2-miss address stream.

    Standalone helper for the Fig. 8 metadata-size study: no timing, no
    hierarchy -- just CRRB coalescing and entry production.  ``limit_bytes``
    defaults to unlimited so the *required* metadata size can be measured.
    """
    geometry = RegionGeometry(params.region_size)
    buffer = MetadataBuffer(geometry=geometry,
                            limit_bytes=limit_bytes if limit_bytes is not None
                            else 1 << 30)
    recorder = JukeboxRecorder(params, buffer)
    for vaddr in miss_vaddrs:
        recorder.on_l2_inst_miss(vaddr, 0.0)
    recorder.finish()
    return buffer


def record_miss_stream_merging(miss_vaddrs,
                               params: JukeboxParams) -> MetadataBuffer:
    """Ablation variant of :func:`record_miss_stream`: duplicate regions are
    *merged* into their existing entry instead of re-recorded.

    The paper's design keeps evicted CRRB entries immutable (Sec. 3.2) --
    re-fetching them from memory would complicate the hardware -- at the
    cost of duplicate entries in the trace.  This variant quantifies that
    cost: it produces the minimal one-entry-per-region metadata, but note
    that merging weakens the temporal-order property replay relies on.
    """
    geometry = RegionGeometry(params.region_size)
    merged = {}
    order = []
    for vaddr in miss_vaddrs:
        region = geometry.region_of(vaddr)
        bit = 1 << geometry.line_offset(vaddr)
        if region in merged:
            merged[region] |= bit
        else:
            merged[region] = bit
            order.append(region)
    buffer = MetadataBuffer(geometry=geometry, limit_bytes=1 << 30)
    for region in order:
        buffer.append((region, merged[region]))
    return buffer
