"""Jukebox: the paper's record-and-replay instruction prefetcher (Sec. 3),
plus the PIF comparison baseline (Sec. 5.5)."""

from repro.core.crrb import CRRB, Entry
from repro.core.jukebox import Jukebox, JukeboxInvocationReport
from repro.core.metadata import MetadataBuffer, unbounded_metadata_size_bytes
from repro.core.pif import PIF, PIFParams, PIFStats, pif_ideal_params
from repro.core.recorder import (
    JukeboxRecorder,
    record_miss_stream,
    record_miss_stream_merging,
)
from repro.core.regions import RegionGeometry
from repro.core.sizing import MetadataSizer, SizingDecision
from repro.core.snapshot import (
    MetadataSnapshot,
    restore_jukebox,
    snapshot_jukebox,
)
from repro.core.replayer import (
    JukeboxReplayer,
    ReplayStats,
    collect_outcomes,
    finalize_overprediction,
)

__all__ = [
    "CRRB",
    "Entry",
    "Jukebox",
    "JukeboxInvocationReport",
    "JukeboxRecorder",
    "JukeboxReplayer",
    "MetadataBuffer",
    "MetadataSizer",
    "MetadataSnapshot",
    "PIF",
    "PIFParams",
    "PIFStats",
    "RegionGeometry",
    "ReplayStats",
    "collect_outcomes",
    "finalize_overprediction",
    "pif_ideal_params",
    "record_miss_stream",
    "record_miss_stream_merging",
    "restore_jukebox",
    "SizingDecision",
    "snapshot_jukebox",
    "unbounded_metadata_size_bytes",
]
