"""Jukebox's in-memory metadata buffer.

One buffer holds the FIFO-ordered sequence of (region pointer, access
vector) entries recorded during one invocation.  The OS allocates it in
physically contiguous memory and exposes its base/limit through the pair of
architecturally visible registers (Secs. 3.2 and 3.4.1).  The *limit*
register caps the buffer: entries that would overflow it are dropped
(this truncation is why Python/NodeJS functions see lower coverage than Go
functions in Fig. 11).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List

from repro.core.crrb import Entry
from repro.core.regions import RegionGeometry
from repro.lint import contracts


@dataclass
class MetadataBuffer:
    """A bounded, append-only FIFO of metadata entries."""

    geometry: RegionGeometry
    limit_bytes: int
    _entries: List[Entry] = field(default_factory=list)
    dropped_entries: int = 0

    @property
    def entry_bits(self) -> int:
        return self.geometry.entry_bits

    @property
    def capacity_entries(self) -> int:
        """How many entries fit under the byte limit."""
        return (self.limit_bytes * 8) // self.entry_bits

    def append(self, entry: Entry) -> bool:
        """Append an entry; returns False (and drops it) if full."""
        contracts.check_metadata_entry(entry, self.geometry.lines_per_region)
        if len(self._entries) >= self.capacity_entries:
            self.dropped_entries += 1
            return False
        self._entries.append(entry)
        return True

    def validate(self) -> None:
        """Contract check: entries fit the limit register and every access
        vector encodes at least one line within the region."""
        contracts.check_metadata_buffer(self)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Entry]:
        return iter(self._entries)

    @property
    def size_bytes(self) -> int:
        """Bytes of metadata actually stored (rounded up)."""
        return -(-len(self._entries) * self.entry_bits // 8)

    @property
    def is_truncated(self) -> bool:
        return self.dropped_entries > 0

    def unique_regions(self) -> int:
        return len({region for region, _vector in self._entries})

    def encoded_blocks(self) -> "set[int]":
        """All block byte addresses encoded across entries (deduplicated)."""
        blocks: "set[int]" = set()
        for region, vector in self._entries:
            blocks.update(self.geometry.expand(region, vector))
        return blocks

    def clear(self) -> None:
        self._entries.clear()
        self.dropped_entries = 0


def unbounded_metadata_size_bytes(entries: int, geometry: RegionGeometry) -> int:
    """Size an *unbounded* recording would need (the Fig. 8 metric)."""
    return -(-entries * geometry.entry_bits // 8)
