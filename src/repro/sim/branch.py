"""Branch direction predictor and BTB models.

Table 1 specifies an LTAGE (gShare + bimodal) direction predictor with an
8K-entry BTB.  We model the gShare+bimodal pair with a simple chooser (a
"tournament-lite" approximation of LTAGE: tagged geometric history tables
mainly improve long-history correlation, which our synthetic branch traces
do not exercise) and a set-associative BTB.

The predictor matters to the reproduction for two reasons:

* *bad speculation* cycles in the Top-Down stacks (Fig. 2) come from
  direction mispredicts;
* a flushed/thrashed BTB adds taken-branch fetch bubbles, part of the extra
  fetch-latency stalls in lukewarm executions.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.sim.params import CoreParams


class BimodalTable:
    """A table of 2-bit saturating counters indexed by PC."""

    def __init__(self, entries: int) -> None:
        self.entries = entries
        self._mask = entries - 1
        self._counters = bytearray([2] * entries)  # weakly taken

    def predict(self, index: int) -> bool:
        return self._counters[index & self._mask] >= 2

    def update(self, index: int, taken: bool) -> None:
        i = index & self._mask
        c = self._counters[i]
        if taken:
            if c < 3:
                self._counters[i] = c + 1
        elif c > 0:
            self._counters[i] = c - 1

    def flush(self) -> None:
        for i in range(self.entries):
            self._counters[i] = 2


class BranchPredictor:
    """gShare + bimodal direction predictor with a chooser."""

    def __init__(self, params: CoreParams) -> None:
        self.params = params
        self.bimodal = BimodalTable(params.bimodal_entries)
        self.gshare = BimodalTable(params.gshare_entries)
        self.chooser = BimodalTable(params.bimodal_entries)
        self._history = 0
        self._history_mask = (1 << params.gshare_history_bits) - 1
        self.lookups = 0
        self.mispredicts = 0

    def _gshare_index(self, pc: int) -> int:
        return (pc >> 2) ^ self._history

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict branch at ``pc``, train on the outcome.

        Returns True when the prediction was *correct*.
        """
        self.lookups += 1
        bi = self.bimodal.predict(pc >> 2)
        gs = self.gshare.predict(self._gshare_index(pc))
        use_gshare = self.chooser.predict(pc >> 2)
        prediction = gs if use_gshare else bi
        correct = prediction == taken

        # Train: chooser moves toward whichever component was right.
        if bi != gs:
            self.chooser.update(pc >> 2, gs == taken)
        self.bimodal.update(pc >> 2, taken)
        self.gshare.update(self._gshare_index(pc), taken)
        self._history = ((self._history << 1) | int(taken)) & self._history_mask

        if not correct:
            self.mispredicts += 1
        return correct

    def flush(self) -> None:
        """Reset all predictor state (lukewarm baseline, Sec. 5.2)."""
        self.bimodal.flush()
        self.gshare.flush()
        self.chooser.flush()
        self._history = 0

    def reset_stats(self) -> None:
        self.lookups = 0
        self.mispredicts = 0


class SiteBranchModel:
    """Aggregate per-site branch model used by the analytic core.

    Traces carry one ``BRANCH`` event per conditional *site* per burst with
    the site's dynamic execution count and taken probability.  Rather than
    simulating every dynamic branch, this model charges:

    * one *cold* mispredict plus one BTB-allocation fetch bubble the first
      time a site executes after a flush (lukewarm invocations pay this for
      every site, warm ones for none);
    * a steady-state mispredict rate per remaining execution, derived from
      the site's bias: ``2*p*(1-p)*correlation_factor`` approximates a
      trained 2-bit/gshare predictor that captures most but not all
      correlation.
    """

    #: Fraction of intrinsic branch entropy a trained predictor fails to
    #: capture.  Calibrated so warm branch MPKI lands in the 2-6 range
    #: typical for server workloads.
    CORRELATION_MISS_FACTOR = 0.12

    def __init__(self, btb: "BTB") -> None:
        self.btb = btb
        self._trained: set = set()
        self.mispredicts = 0.0
        self.cold_mispredicts = 0
        self.executions = 0

    def execute_site(self, pc: int, executions: int,
                     taken_prob: float) -> Tuple[float, int]:
        """Run ``executions`` dynamic branches of the site at ``pc``.

        Returns ``(mispredicts, btb_bubbles)``.
        """
        self.executions += executions
        mispredicts = 0.0
        bubbles = 0
        remaining = executions
        if pc not in self._trained:
            self._trained.add(pc)
            mispredicts += 1.0
            self.cold_mispredicts += 1
            remaining -= 1
            if not self.btb.access(pc):
                bubbles += 1
        if remaining > 0:
            p = taken_prob
            steady = 2.0 * p * (1.0 - p) * self.CORRELATION_MISS_FACTOR
            mispredicts += remaining * steady
        self.mispredicts += mispredicts
        return mispredicts, bubbles

    def flush(self) -> None:
        """Forget all training (lukewarm baseline flush)."""
        self._trained.clear()
        self.btb.flush()

    def reset_stats(self) -> None:
        self.mispredicts = 0.0
        self.cold_mispredicts = 0
        self.executions = 0

    @property
    def trained_sites(self) -> int:
        return len(self._trained)


class BTB:
    """Set-associative branch target buffer with LRU replacement."""

    def __init__(self, params: CoreParams) -> None:
        entries = params.btb_entries
        self.assoc = params.btb_assoc
        self.num_sets = entries // self.assoc
        self._set_mask = self.num_sets - 1
        self._sets: List[List[int]] = [[] for _ in range(self.num_sets)]
        self.lookups = 0
        self.misses = 0

    def access(self, pc: int) -> bool:
        """Look up the target for the branch at ``pc``; allocate on miss."""
        self.lookups += 1
        key = pc >> 2
        lru = self._sets[key & self._set_mask]
        if key in lru:
            if lru[-1] != key:
                lru.remove(key)
                lru.append(key)
            return True
        self.misses += 1
        if len(lru) >= self.assoc:
            lru.pop(0)
        lru.append(key)
        return False

    def flush(self) -> None:
        for lru in filter(None, self._sets):
            del lru[:]

    def reset_stats(self) -> None:
        self.lookups = 0
        self.misses = 0
