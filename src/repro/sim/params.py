"""Machine parameter definitions.

This module encodes Table 1 of the paper (the simulated Skylake-like
processor) plus the Broadwell-like configuration used for the
characterization study (Sec. 4.1) and the cross-platform evaluation
(Sec. 5.6).

All latencies are in core clock cycles; all sizes in bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import ConfigurationError
from repro.units import KB, MB, LINE_SIZE, is_power_of_two


@dataclass(frozen=True)
class CacheParams:
    """Geometry and timing of one set-associative cache level."""

    name: str
    size: int
    assoc: int
    latency: int
    line_size: int = LINE_SIZE
    mshrs: int = 10

    def __post_init__(self) -> None:
        if self.assoc <= 0:
            raise ConfigurationError(
                f"{self.name}: associativity must be >= 1, got {self.assoc}; "
                f"use assoc=1 for a direct-mapped cache"
            )
        if not is_power_of_two(self.line_size):
            raise ConfigurationError(
                f"{self.name}: line size must be a power of two, got "
                f"{self.line_size} (the hierarchy assumes {LINE_SIZE}B lines, "
                f"Table 1)"
            )
        if self.latency < 0:
            raise ConfigurationError(
                f"{self.name}: access latency must be >= 0 cycles, "
                f"got {self.latency}"
            )
        if self.mshrs <= 0:
            raise ConfigurationError(
                f"{self.name}: MSHR count must be > 0, got {self.mshrs}; a "
                f"cache with no MSHRs cannot have outstanding misses"
            )
        if self.size <= 0 or self.size % (self.assoc * self.line_size) != 0:
            raise ConfigurationError(
                f"{self.name}: size {self.size} not divisible into "
                f"{self.assoc}-way sets of {self.line_size}B lines"
            )
        if not is_power_of_two(self.num_sets):
            raise ConfigurationError(
                f"{self.name}: number of sets {self.num_sets} must be a power of two"
            )

    @property
    def num_sets(self) -> int:
        return self.size // (self.assoc * self.line_size)

    @property
    def num_lines(self) -> int:
        return self.size // self.line_size


@dataclass(frozen=True)
class TLBParams:
    """Geometry and timing of one TLB."""

    name: str
    entries: int
    assoc: int
    walk_latency: int = 40

    def __post_init__(self) -> None:
        if self.assoc <= 0:
            raise ConfigurationError(
                f"{self.name}: associativity must be >= 1, got {self.assoc}"
            )
        if self.walk_latency < 0:
            raise ConfigurationError(
                f"{self.name}: page-walk latency must be >= 0 cycles, "
                f"got {self.walk_latency}"
            )
        if self.entries <= 0 or self.entries % self.assoc != 0:
            raise ConfigurationError(
                f"{self.name}: {self.entries} entries not divisible into "
                f"{self.assoc}-way sets"
            )
        if not is_power_of_two(self.entries // self.assoc):
            raise ConfigurationError(f"{self.name}: set count must be a power of two")

    @property
    def num_sets(self) -> int:
        return self.entries // self.assoc


@dataclass(frozen=True)
class CoreParams:
    """Front-end / back-end parameters of the analytic core model (Table 1)."""

    freq_ghz: float = 2.6
    fetch_bytes_per_cycle: int = 16
    issue_width: int = 4
    rob_entries: int = 224
    #: Pipeline refill penalty charged per direction mispredict (bad speculation).
    mispredict_penalty: int = 15
    #: Fetch bubble charged when a taken branch misses in the BTB (fetch latency).
    btb_miss_penalty: int = 8
    #: Cycles of fetch-group fragmentation charged per taken branch
    #: (fetch bandwidth).
    taken_branch_penalty: float = 0.6
    #: Fraction of a data-miss latency hidden by the out-of-order back-end
    #: (memory-level parallelism / overlap with execution, Sec. 2.4).
    data_overlap: float = 0.65
    #: Fraction of an on-chip (L2/LLC-hit) instruction-miss latency that
    #: stalls the pipeline.  The decoupled front-end and the OoO window hide
    #: part of short fetch bubbles (Top-Down footnote 1 in the paper).
    inst_stall_onchip: float = 0.55
    #: Fraction of a DRAM instruction-miss latency that stalls the pipeline.
    #: Long misses overlap with each other via fetch-ahead through the L1-I
    #: MSHRs, so the *charged* per-miss cost is well below the raw latency
    #: (this is what keeps the perfect-I$ bound at ~+31%, Fig. 10).
    inst_stall_dram: float = 0.32
    #: Direction predictor: 2-bit bimodal + gshare tables (entries each).
    bimodal_entries: int = 4096
    gshare_entries: int = 16384
    gshare_history_bits: int = 12
    btb_entries: int = 8192
    btb_assoc: int = 8

    def __post_init__(self) -> None:
        if self.issue_width <= 0 or self.fetch_bytes_per_cycle <= 0:
            raise ConfigurationError(
                f"core widths must be >= 1, got issue_width="
                f"{self.issue_width} fetch_bytes_per_cycle="
                f"{self.fetch_bytes_per_cycle}"
            )
        for fraction_name in ("data_overlap", "inst_stall_onchip",
                              "inst_stall_dram"):
            value = getattr(self, fraction_name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{fraction_name} is a fraction and must lie in [0, 1], "
                    f"got {value}"
                )


@dataclass(frozen=True)
class MemoryParams:
    """DRAM model parameters (Table 1: DDR4-2400, 14-14-14)."""

    #: Latency of a random (row-miss) access, in core cycles.  Roughly
    #: RCD+RP+CL plus controller/queueing overheads at 2.6GHz.
    latency: int = 170
    #: Latency of a row-buffer hit / streaming access, in core cycles.
    row_hit_latency: int = 60
    #: Sustainable bandwidth in bytes per core cycle (DDR4-2400 is 19.2GB/s,
    #: i.e. ~7.4B per 2.6GHz cycle).
    bytes_per_cycle: float = 7.4

    def __post_init__(self) -> None:
        if self.latency <= 0 or self.row_hit_latency <= 0:
            raise ConfigurationError(
                f"DRAM latencies must be positive, got latency={self.latency} "
                f"row_hit_latency={self.row_hit_latency}"
            )
        if self.row_hit_latency > self.latency:
            raise ConfigurationError(
                f"row-hit latency ({self.row_hit_latency}) cannot exceed the "
                f"row-miss latency ({self.latency})"
            )
        if self.bytes_per_cycle <= 0:
            raise ConfigurationError(
                f"DRAM bandwidth must be positive, got "
                f"{self.bytes_per_cycle} bytes/cycle"
            )


@dataclass(frozen=True)
class JukeboxParams:
    """Jukebox configuration (Table 1 bottom row and Sec. 5.1).

    ``metadata_bytes`` is the *per-phase* buffer budget: the paper's
    "32KB metadata size (16KB record + 16KB replay)" corresponds to
    ``metadata_bytes=16*KB`` here, because at any time one buffer is being
    recorded while the other (written by the previous invocation) is being
    replayed.
    """

    crrb_entries: int = 16
    region_size: int = 1 * KB
    metadata_bytes: int = 16 * KB

    def __post_init__(self) -> None:
        if not is_power_of_two(self.region_size) or self.region_size < LINE_SIZE:
            raise ConfigurationError(
                f"region size must be a power of two >= {LINE_SIZE}, "
                f"got {self.region_size}"
            )
        if self.crrb_entries <= 0:
            raise ConfigurationError("CRRB must have at least one entry")
        if self.metadata_bytes <= 0:
            raise ConfigurationError("metadata budget must be positive")

    @property
    def lines_per_region(self) -> int:
        return self.region_size // LINE_SIZE


@dataclass(frozen=True)
class MachineParams:
    """A complete simulated machine: core, cache hierarchy, TLBs, DRAM."""

    name: str
    core: CoreParams
    l1i: CacheParams
    l1d: CacheParams
    l2: CacheParams
    llc: CacheParams
    itlb: TLBParams
    dtlb: TLBParams
    memory: MemoryParams
    jukebox: JukeboxParams = field(default_factory=JukeboxParams)

    def with_jukebox(self, jukebox: JukeboxParams) -> "MachineParams":
        """Return a copy of this machine with a different Jukebox config."""
        return replace(self, jukebox=jukebox)

    def miss_latency_to(self, level: str) -> int:
        """Total load-to-use latency of a fetch served by ``level``."""
        if level == "l1":
            return 0
        if level == "l2":
            return self.l2.latency
        if level == "llc":
            return self.l2.latency + self.llc.latency
        if level == "memory":
            return self.l2.latency + self.llc.latency + self.memory.latency
        raise ConfigurationError(f"unknown hierarchy level {level!r}")


#: Calibration modes for the analytic core's stall factors.
#:
#: The paper reports two kinds of numbers measured on two different
#: platforms: *characterization* results from perf-counter Top-Down
#: attribution on real hardware (Figs. 1-5: interleaving costs +31-114%
#: CPI, front-end ~half of all cycles) and *evaluation* results from gem5
#: simulation (Figs. 9-13: the perfect-I-cache bound is only +31% because
#: the decoupled front-end and MSHR fetch-ahead overlap the vast majority
#: of raw miss latency).  We mirror that with two stall-factor presets;
#: each experiment uses the preset matching the platform the paper used.
MODE_CHARACTERIZATION = "characterization"
MODE_EVALUATION = "evaluation"

_MODE_FACTORS = {
    MODE_CHARACTERIZATION: dict(inst_stall_onchip=0.30, inst_stall_dram=0.26,
                                data_overlap=0.35),
    MODE_EVALUATION: dict(inst_stall_onchip=0.045, inst_stall_dram=0.055,
                          data_overlap=0.80),
}


def core_params_for_mode(mode: str, freq_ghz: float = 2.6) -> CoreParams:
    """Build :class:`CoreParams` with the given calibration mode's factors."""
    try:
        factors = _MODE_FACTORS[mode]
    except KeyError:
        raise ConfigurationError(
            f"unknown mode {mode!r}; expected one of {sorted(_MODE_FACTORS)}"
        ) from None
    return CoreParams(freq_ghz=freq_ghz, **factors)


def skylake(jukebox: Optional[JukeboxParams] = None,
            mode: str = MODE_EVALUATION) -> MachineParams:
    """The Skylake-like configuration of Table 1 (1MB L2, 8MB LLC)."""
    return MachineParams(
        name="skylake",
        core=core_params_for_mode(mode),
        l1i=CacheParams("L1I", size=32 * KB, assoc=8, latency=4, mshrs=10),
        l1d=CacheParams("L1D", size=32 * KB, assoc=8, latency=12, mshrs=10),
        l2=CacheParams("L2", size=1 * MB, assoc=8, latency=36, mshrs=32),
        llc=CacheParams("LLC", size=8 * MB, assoc=16, latency=36, mshrs=32),
        itlb=TLBParams("ITLB", entries=128, assoc=8),
        dtlb=TLBParams("DTLB", entries=64, assoc=4),
        memory=MemoryParams(),
        jukebox=jukebox if jukebox is not None else JukeboxParams(),
    )


def broadwell(jukebox: Optional[JukeboxParams] = None,
              mode: str = MODE_CHARACTERIZATION) -> MachineParams:
    """The Broadwell-like configuration (Secs. 4.1 and 5.6).

    Distinguishing feature: a small 256KB L2.  The paper finds that the
    small L2 suffers conflict evictions of Jukebox prefetches and needs a
    larger 32KB per-phase metadata store.  The default mode is
    *characterization* because this platform hosts the paper's perf-counter
    studies; the Sec. 5.6 simulation comparison uses
    ``broadwell(mode=MODE_EVALUATION)``.
    """
    if jukebox is None:
        jukebox = JukeboxParams(metadata_bytes=32 * KB)
    return MachineParams(
        name="broadwell",
        core=core_params_for_mode(mode, freq_ghz=2.4),
        l1i=CacheParams("L1I", size=32 * KB, assoc=8, latency=4, mshrs=10),
        l1d=CacheParams("L1D", size=32 * KB, assoc=8, latency=12, mshrs=10),
        l2=CacheParams("L2", size=256 * KB, assoc=8, latency=26, mshrs=20),
        llc=CacheParams("LLC", size=8 * MB, assoc=16, latency=36, mshrs=32),
        itlb=TLBParams("ITLB", entries=128, assoc=8),
        dtlb=TLBParams("DTLB", entries=64, assoc=4),
        memory=MemoryParams(),
        jukebox=jukebox,
    )


#: Canonical instances used throughout tests and experiments.
SKYLAKE = skylake()
BROADWELL = broadwell()
