"""The stable public simulation entry point.

:func:`simulate` is the one call every consumer -- ``experiments/``,
``server/``, ``engine/`` workers, tests -- goes through to execute an
:class:`~repro.workloads.trace.InvocationTrace` (built with
:class:`~repro.workloads.trace.TraceBuilder`) on a machine:

>>> from repro.sim import simulate, skylake
>>> result = simulate(trace, skylake())            # doctest: +SKIP
>>> result = simulate(trace, skylake(), backend="scalar")  # doctest: +SKIP

For experiment protocols that carry microarchitectural state across
invocations (warm reference runs, Jukebox record/replay), construct one
:class:`~repro.sim.core.Simulator` up front and pass it as ``sim=``; the
machine and backend then live on the simulator:

>>> sim = Simulator(machine, backend="columnar")   # doctest: +SKIP
>>> for trace in traces:                           # doctest: +SKIP
...     result = simulate(trace, sim=sim)

Backend choice never changes results -- ``"columnar"`` and ``"scalar"``
are bit-identical by contract -- only throughput (DESIGN.md Sec. 12).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.sim.core import InvocationResult, Simulator
from repro.sim.params import MachineParams
from repro.workloads.trace import InvocationTrace


def simulate(trace: InvocationTrace,
             machine: Optional[MachineParams] = None,
             *,
             backend: Optional[str] = None,
             sim: Optional[Simulator] = None,
             start_cycle: float = 0.0) -> InvocationResult:
    """Execute one invocation trace; returns its measurements.

    Either pass ``machine`` (a fresh, cold :class:`Simulator` is built,
    ``backend`` defaulting to ``"columnar"``) or pass an existing ``sim``
    to reuse its warm state.  Passing both ``sim`` and ``machine`` -- or
    ``sim`` plus a conflicting ``backend`` -- is a configuration error:
    the simulator already owns those choices.
    """
    if sim is not None:
        if machine is not None:
            raise ConfigurationError(
                "pass either machine= or sim=, not both: the simulator "
                "already owns its machine parameters"
            )
        if backend is not None and backend != sim.backend:
            raise ConfigurationError(
                f"backend={backend!r} conflicts with the provided "
                f"simulator's backend={sim.backend!r}"
            )
        return sim.run(trace, start_cycle)
    if machine is None:
        raise ConfigurationError("simulate() needs machine= or sim=")
    built = Simulator(machine,
                      backend=backend if backend is not None else "columnar")
    return built.run(trace, start_cycle)
