"""DRAM model.

A deliberately simple latency/bandwidth model:

* a *random* (demand) access costs ``MemoryParams.latency`` cycles;
* a *streaming* access (Jukebox replay prefetch reads and metadata
  sequential reads hit open rows) costs ``MemoryParams.row_hit_latency``;
* sustained bandwidth is capped at ``MemoryParams.bytes_per_cycle``: a
  request stream is spaced at least ``LINE_SIZE / bytes_per_cycle`` cycles
  apart, which is how the replay engine's *timeliness* is modeled
  (Sec. 3.3: the prefetch engine streams the metadata and issues bulk
  prefetches; whether a demand access finds its block already in the L2
  depends on whether the replay front has passed it).

Traffic is accounted in :class:`repro.sim.stats.MemoryTraffic` by class so
Fig. 12 can be regenerated.
"""

from __future__ import annotations

from repro.sim.params import MemoryParams
from repro.sim.stats import MemoryTraffic
from repro.units import LINE_SIZE


class MainMemory:
    """Latency/bandwidth DRAM model with per-class traffic accounting."""

    def __init__(self, params: MemoryParams, traffic: MemoryTraffic) -> None:
        self.params = params
        self.traffic = traffic
        #: Cycles between consecutive 64B transfers at peak bandwidth.
        self.cycles_per_line = LINE_SIZE / params.bytes_per_cycle
        #: Queueing-delay multiplier applied to demand latency.  On a
        #: high-occupancy server (Fig. 1's setup: ~50% CPU load from other
        #: function instances) DRAM requests contend with the co-running
        #: tenants' traffic; the stressor raises this above 1.0.
        self.contention = 1.0

    # -- demand path -----------------------------------------------------

    def demand_fetch(self, instruction: bool) -> float:
        """A demand line fill from DRAM.  Returns its latency in cycles."""
        if instruction:
            self.traffic.demand_inst += LINE_SIZE
        else:
            self.traffic.demand_data += LINE_SIZE
        return self.params.latency * self.contention

    # -- prefetch path ---------------------------------------------------

    def prefetch_fetch(self) -> int:
        """A prefetch line fill (streamed; row-hit latency).

        The *useful vs. overpredicted* classification can only be made when
        the line is later referenced or evicted, so prefetch bytes are
        provisionally charged as overpredicted and re-classified via
        :meth:`credit_useful_prefetch`.
        """
        self.traffic.prefetch_overpredicted += LINE_SIZE
        return self.params.row_hit_latency

    def credit_useful_prefetch(self) -> None:
        """Re-classify one previously fetched prefetch line as useful."""
        self.traffic.prefetch_overpredicted -= LINE_SIZE
        self.traffic.prefetch_useful += LINE_SIZE

    # -- metadata path ---------------------------------------------------

    def metadata_write(self, nbytes: int) -> None:
        """Jukebox record-phase metadata written to DRAM."""
        self.traffic.metadata_record += nbytes

    def metadata_read(self, nbytes: int) -> None:
        """Jukebox replay-phase metadata streamed from DRAM."""
        self.traffic.metadata_replay += nbytes

    # -- bandwidth/timeliness helpers -------------------------------------

    def stream_completion_cycles(self, n_lines: int) -> float:
        """Cycles for a bandwidth-bound stream of ``n_lines`` line fills."""
        if n_lines <= 0:
            return 0.0
        return self.params.row_hit_latency + n_lines * self.cycles_per_line
