"""Vectorized columnar simulation backend.

This module is the ``backend="columnar"`` implementation behind
:meth:`repro.sim.core.Simulator.run`: it executes the op program of a
:class:`repro.workloads.trace.ColumnarTrace` instead of interpreting one
event at a time.  The contract (DESIGN.md Sec. 12) is *bit-exact
equivalence*: for any trace and any starting hierarchy state, the
:class:`~repro.sim.core.InvocationResult` and every piece of simulator
state (cache LRU orders, TLB contents, prefetch ledgers, statistics,
branch-predictor training) must be byte-identical to what the scalar
reference produces.  The differential battery in
``tests/sim/test_backend_differential.py`` enforces this across all
Table-2 profiles.

How the speed is won, without changing a single float:

* **Run-length-encoded walks.**  ``FunctionModel`` emits each code segment
  as ``visits`` identical block walks back-to-back.  The columnar IR
  detects the period, and this interpreter *classifies the whole pattern
  once* against current cache state instead of looking up every block of
  every walk.
* **Bulk walk classes.**  A walk whose pattern is (a) fully L1-I-resident,
  (b) fully L2-resident, or (c) resident nowhere is charged with a closed
  form: constant per-event stalls (plus exact I-TLB page-run adjustments),
  per-level hit/miss counters bumped ``n`` at a time, and the aggregate
  LRU effect applied through the bulk methods of
  :class:`repro.sim.cache.SetAssocCache`.  Anything that does not prove a
  class's preconditions -- pending prefetch flags, in-flight fill queues,
  an active ``on_fetch`` hook, perfect-I$ mode, partial residency -- falls
  back to a per-event path for that walk only, reusing the very same
  ``access_instr`` method as the scalar backend.
* **Precomputed accumulator totals.**  ``td.retiring`` and
  ``td.fetch_bandwidth`` receive only *state-independent* adds in the
  scalar interpreter (per-IFETCH ``insts/width`` and per-LOOP spec
  constants), so their exact left folds are computed once per
  (trace, machine) in :class:`repro.workloads.trace.MachineColumns` and
  never threaded through the hot loop; the same holds for the integer
  instruction count.  Only the state-dependent accumulators (``cycle``,
  fetch-latency, bad-speculation, backend-bound, mispredicts) remain
  per-event, and chunks reduce them with ``np.add.accumulate`` -- a
  strict sequential fold, bitwise-identical to the scalar ``+=`` loop,
  unlike pairwise ``ndarray.sum`` -- or a plain Python fold below the
  size where NumPy call overhead dominates.
* **Inline transcriptions.**  The data (``access_data``), branch
  (``execute_site``) and I-TLB paths are transcribed into local loops
  that mutate the *same* underlying structures (LRU lists, prefetch
  ledgers, training sets) with the same operations in the same order,
  accumulating statistics in local integers flushed once per run.  The
  transcriptions are unconditional: those paths never interact with
  record hooks, fill queues or perfect-I$ mode.
* **Memoized region summaries.**  Per-pattern set groupings are cached in
  :class:`repro.sim.hierarchy.RegionSummaries` keyed on (pattern, cache
  geometry), so invocation 40 of a function reuses the tables built by
  invocation 0.

Skipped zero-adds rely on ``x + 0.0 == x`` bitwise, which holds for every
accumulator here: all start at non-negative values and only non-negative
charges are added, so ``-0.0`` can never arise.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.lint import contracts
from repro.sim.topdown import TopDownBreakdown
from repro.units import LINE_SHIFT, LINE_SIZE, PAGE_SHIFT
from repro.workloads.trace import BRANCH, LOAD, LOOP, OP_EVENTS, STORE

#: Chunks below this many events are folded with a Python loop; above it,
#: ``np.add.accumulate`` wins despite its fixed call overhead.
_NP_FOLD_MIN = 64

_EMPTY: tuple = ()


def _seq_sum(acc: float, values: np.ndarray) -> float:
    """Left-fold ``values`` into ``acc``; bitwise-identical to the loop
    ``for v in values: acc += v`` (``np.add.accumulate`` is sequential,
    not pairwise)."""
    n = len(values)
    if n == 0:
        return acc
    buf = np.empty(n + 1, dtype=np.float64)
    buf[0] = acc
    buf[1:] = values
    return float(np.add.accumulate(buf)[-1])


def run_columnar(sim, trace, start_cycle: float = 0.0):
    """Execute ``trace`` on ``sim`` (a :class:`repro.sim.core.Simulator`)
    through the columnar IR.  See the module docstring for the exactness
    argument; the public entry point is :func:`repro.sim.simulate`."""
    from repro.sim.core import InvocationResult

    ct = trace.columnar()
    hier = sim.hierarchy
    stats = hier.stats
    stats_before = stats.snapshot()
    td = TopDownBreakdown()
    sources: Dict[str, int] = {}
    mispredicts = 0.0
    bubbles = 0
    cycle = start_cycle

    mis_penalty = sim._mispredict_penalty
    btb_penalty = sim._btb_penalty
    branches = sim.branches
    access_instr = hier.access_instr
    loops = ct.loops

    kinds_l = ct.kinds_list
    addrs_l = ct.addrs_list
    args_l = ct.args_list
    args2_l = ct.args2_list
    blocks_l = ct.blocks_list
    pages_l = ct.pages_list
    mc = ct.machine_columns(sim._width, sim._taken_penalty)
    retire_l = mc.retire_list
    fb_l = mc.fb_list
    step0_l = mc.step0_list
    step0_col = mc.step0

    l1i = hier.l1i
    l2 = hier.l2
    llc = hier.llc
    memory = hier.memory
    l1i_fills = hier.l1i_fills
    l2_fills = hier.l2_fills
    summaries = hier.region_summaries

    hook = hier.record_hook
    hook_fetch_noop = hook is None or getattr(hook, "fetch_is_noop", False)
    # Perfect-I$ mode and hooks with live on_fetch disable every bulk
    # class for the whole run; fill queues only until they drain.
    scalar_only = hier.perfect_icache or not hook_fetch_noop
    queues_busy = bool(l1i_fills.inflight or l1i_fills.pending
                       or l2_fills.inflight or l2_fills.pending)

    # Bulk stall constants.  Each expression replays the scalar path's
    # float operations on the same operands in the same order, so the
    # constant equals the per-event value bit for bit.  ``contention`` is
    # fixed for the duration of a run (the stressor adjusts it between
    # invocations only).
    contention = memory.contention
    w_itlb = hier._itlb_walk * hier._f_onchip
    c_l2hit = hier._l2_lat * hier._f_onchip
    cw_l2hit = w_itlb + c_l2hit
    _a_llc = (hier._l2_lat + hier._llc_lat * contention) * hier._f_onchip
    _b_dram = (memory.params.latency * contention) * hier._f_dram
    c_miss = _a_llc + _b_dram
    cw_miss = (w_itlb + _a_llc) + _b_dram
    steps_l2hit = mc.stall_steps(c_l2hit)
    steps_miss = mc.stall_steps(c_miss)

    # --- inline data path (access_data transcription) -----------------
    # Valid unconditionally: the data path never touches record hooks,
    # fill queues or perfect-I$ mode.  Locals alias the live structures;
    # statistics accumulate in local ints flushed once at the end (the
    # data-side counters are touched by no other code during a run).
    f_data = hier._f_data
    w_dtlb = hier._dtlb_walk * f_data
    c_l2d = hier._l2_lat * f_data
    c_llcd = (hier._l2_lat + hier._llc_lat * contention) * f_data
    c_memd = (hier._l2_lat + hier._llc_lat * contention
              + memory.params.latency * contention) * f_data
    dtlb = hier.dtlb
    dtlb_sets = dtlb._sets
    dtlb_mask = dtlb._set_mask
    dtlb_assoc = dtlb.assoc
    l1d = hier.l1d
    l1d_sets = l1d._sets
    l1d_mask = l1d._set_mask
    l1d_assoc = l1d.assoc
    l1d_pf = l1d._pf_pending
    l1d_res = l1d._resident
    l2_sets = l2._sets
    l2_mask = l2._set_mask
    l2_assoc = l2.assoc
    l2_pf = l2._pf_pending
    l2_res = l2._resident
    llc_sets = llc._sets
    llc_mask = llc._set_mask
    llc_assoc = llc.assoc
    llc_pf = llc._pf_pending
    llc_res = llc._resident
    next_line = hier.l1d_next_line
    line_shift = LINE_SHIFT
    page_shift = PAGE_SHIFT
    # Page/block of the most recent data access.  When the next access
    # lands on the same page, that page is the MRU entry of its D-TLB set
    # and the scalar path's lookup is a guaranteed no-op hit.  Same-block
    # accesses are a complete no-op: the block is the MRU line of its
    # L1-D set (a next-line prefetch insert cannot displace it -- blocks
    # ``b`` and ``b+1`` always map to different sets), its prefetch flag
    # was already cleared by the previous access, and the D-TLB charge is
    # zero.  Only the hit counters advance.
    prev_page = -1
    prev_block = -1
    n_dtlb_h = n_dtlb_m = 0
    n_l1d_h = n_l1d_m = n_l1d_pfh = 0
    n_l2d_h = n_l2d_m = 0
    n_llc_dh = n_llc_dm = 0
    mem_data_bytes = 0

    # --- inline branch path (execute_site transcription) ---------------
    trained = branches._trained
    btb = branches.btb
    btb_sets = btb._sets
    btb_mask = btb._set_mask
    btb_assoc = btb.assoc
    cf = branches.CORRELATION_MISS_FACTOR
    steady_l = ct.branch_steady(cf)
    bm = branches.mispredicts  # threaded float; written back at the end
    d_cold = d_execs = d_btb_lookups = d_btb_misses = 0

    # --- inline I-TLB (TLB.access transcription) ------------------------
    itlb = hier.itlb
    itlb_sets = itlb._sets
    itlb_mask = itlb._set_mask
    itlb_assoc = itlb.assoc

    # --- fused cold-walk insert plans -----------------------------------
    # When every group is a singleton (the common case: pattern blocks hit
    # distinct sets at every level) and no pending-prefetch flags exist at
    # the touched levels, the per-level bulk passes collapse into one loop
    # over precomputed (set index per level, block) tuples.  The levels
    # are independent structures, so interleaving per block is
    # state-identical to the per-level passes.
    l1i_sets = l1i._sets
    l1i_pf = l1i._pf_pending
    l1i_assoc = l1i.assoc
    l1i_res = l1i._resident
    fused_miss_key = ("m3", llc_mask, l2_mask, l1i._set_mask)
    fused_hit_key = ("h2", l2_mask, l1i._set_mask)

    # State-dependent Top-Down accumulators live in locals (one attribute
    # store per run instead of per event); each receives exactly the
    # scalar backend's sequence of ``+=`` operations.  ``retiring`` and
    # ``fetch_bandwidth`` are state-independent: their finals come from
    # ``mc`` (see module docstring).
    td_fl = 0.0
    td_bs = 0.0
    td_bb = 0.0

    def span_events(lo: int, hi: int) -> None:
        """Interpret a heterogeneous (non-IFETCH) span with the inline
        data/branch transcriptions.

        The loop zips precomputed per-event columns (kind, address, cache
        block, page, arg, steady mispredict rate) instead of indexing six
        lists per event, splits the LOAD and STORE paths (stores charge no
        fill stall), and shortcuts the D-TLB when the page equals the
        previous data access's page -- that page is by construction the
        MRU entry of its set, so the scalar path would neither move nor
        charge anything."""
        nonlocal cycle, mispredicts, bubbles, td_fl, td_bs, td_bb, bm
        nonlocal d_cold, d_execs, d_btb_lookups, d_btb_misses
        nonlocal n_dtlb_h, n_dtlb_m, n_l1d_h, n_l1d_m, n_l1d_pfh
        nonlocal n_l2d_h, n_l2d_m, n_llc_dh, n_llc_dm, mem_data_bytes
        nonlocal prev_page, prev_block
        for kind, addr, block, page, arg, steady in zip(
                kinds_l[lo:hi], addrs_l[lo:hi], blocks_l[lo:hi],
                pages_l[lo:hi], args_l[lo:hi], steady_l[lo:hi]):
            if kind == LOAD:
                if block == prev_block:
                    n_dtlb_h += 1
                    n_l1d_h += 1
                    continue
                prev_block = block
                if page == prev_page:
                    n_dtlb_h += 1
                    st = 0.0
                else:
                    prev_page = page
                    lru = dtlb_sets[page & dtlb_mask]
                    if page in lru:
                        if lru[-1] != page:
                            lru.remove(page)
                            lru.append(page)
                        n_dtlb_h += 1
                        st = 0.0
                    else:
                        if len(lru) >= dtlb_assoc:
                            lru.pop(0)
                        lru.append(page)
                        n_dtlb_m += 1
                        st = w_dtlb
                if block in l1d_res:
                    l1d_lru = l1d_sets[block & l1d_mask]
                    if l1d_lru[-1] != block:
                        l1d_lru.remove(block)
                        l1d_lru.append(block)
                    n_l1d_h += 1
                    if block in l1d_pf:
                        l1d_pf.discard(block)
                        n_l1d_pfh += 1
                    if st:
                        td_bb += st
                        cycle += st
                    continue
                n_l1d_m += 1
                if block in l2_res:
                    lru2 = l2_sets[block & l2_mask]
                    if lru2[-1] != block:
                        lru2.remove(block)
                        lru2.append(block)
                    l2_pf.discard(block)
                    n_l2d_h += 1
                    st += c_l2d
                else:
                    n_l2d_m += 1
                    lru3 = llc_sets[block & llc_mask]
                    if block in llc_res:
                        if lru3[-1] != block:
                            lru3.remove(block)
                            lru3.append(block)
                        llc_pf.discard(block)
                        n_llc_dh += 1
                        st += c_llcd
                    else:
                        n_llc_dm += 1
                        mem_data_bytes += LINE_SIZE
                        st += c_memd
                        if len(lru3) >= llc_assoc:
                            victim = lru3.pop(0)
                            llc_res.discard(victim)
                            if victim in llc_pf:
                                llc_pf.discard(victim)
                        lru3.append(block)
                        llc_res.add(block)
                    lru2 = l2_sets[block & l2_mask]
                    if len(lru2) >= l2_assoc:
                        victim = lru2.pop(0)
                        l2_res.discard(victim)
                        if victim in l2_pf:
                            l2_pf.discard(victim)
                    lru2.append(block)
                    l2_res.add(block)
                l1d_lru = l1d_sets[block & l1d_mask]
                if len(l1d_lru) >= l1d_assoc:
                    victim = l1d_lru.pop(0)
                    l1d_res.discard(victim)
                    if victim in l1d_pf:
                        l1d_pf.discard(victim)
                l1d_lru.append(block)
                l1d_res.add(block)
                if next_line:
                    nb = block + 1
                    if nb not in l1d_res and (nb in l2_res or nb in llc_res):
                        lru = l1d_sets[nb & l1d_mask]
                        if len(lru) >= l1d_assoc:
                            victim = lru.pop(0)
                            l1d_res.discard(victim)
                            if victim in l1d_pf:
                                l1d_pf.discard(victim)
                        lru.append(nb)
                        l1d_res.add(nb)
                        l1d_pf.add(nb)
                if st:
                    td_bb += st
                    cycle += st
            elif kind == STORE:
                # Same residency/LRU effects as a LOAD, but stores charge
                # only the D-TLB walk (write-allocate fills are off the
                # critical path in the scalar model).
                if block == prev_block:
                    n_dtlb_h += 1
                    n_l1d_h += 1
                    continue
                prev_block = block
                if page == prev_page:
                    st = 0.0
                    n_dtlb_h += 1
                else:
                    prev_page = page
                    lru = dtlb_sets[page & dtlb_mask]
                    if page in lru:
                        if lru[-1] != page:
                            lru.remove(page)
                            lru.append(page)
                        n_dtlb_h += 1
                        st = 0.0
                    else:
                        if len(lru) >= dtlb_assoc:
                            lru.pop(0)
                        lru.append(page)
                        n_dtlb_m += 1
                        st = w_dtlb
                if block in l1d_res:
                    l1d_lru = l1d_sets[block & l1d_mask]
                    if l1d_lru[-1] != block:
                        l1d_lru.remove(block)
                        l1d_lru.append(block)
                    n_l1d_h += 1
                    if block in l1d_pf:
                        l1d_pf.discard(block)
                        n_l1d_pfh += 1
                    if st:
                        td_bb += st
                        cycle += st
                    continue
                n_l1d_m += 1
                if block in l2_res:
                    lru2 = l2_sets[block & l2_mask]
                    if lru2[-1] != block:
                        lru2.remove(block)
                        lru2.append(block)
                    l2_pf.discard(block)
                    n_l2d_h += 1
                else:
                    n_l2d_m += 1
                    lru3 = llc_sets[block & llc_mask]
                    if block in llc_res:
                        if lru3[-1] != block:
                            lru3.remove(block)
                            lru3.append(block)
                        llc_pf.discard(block)
                        n_llc_dh += 1
                    else:
                        n_llc_dm += 1
                        mem_data_bytes += LINE_SIZE
                        if len(lru3) >= llc_assoc:
                            victim = lru3.pop(0)
                            llc_res.discard(victim)
                            if victim in llc_pf:
                                llc_pf.discard(victim)
                        lru3.append(block)
                        llc_res.add(block)
                    lru2 = l2_sets[block & l2_mask]
                    if len(lru2) >= l2_assoc:
                        victim = lru2.pop(0)
                        l2_res.discard(victim)
                        if victim in l2_pf:
                            l2_pf.discard(victim)
                    lru2.append(block)
                    l2_res.add(block)
                l1d_lru = l1d_sets[block & l1d_mask]
                if len(l1d_lru) >= l1d_assoc:
                    victim = l1d_lru.pop(0)
                    l1d_res.discard(victim)
                    if victim in l1d_pf:
                        l1d_pf.discard(victim)
                l1d_lru.append(block)
                l1d_res.add(block)
                if next_line:
                    nb = block + 1
                    if nb not in l1d_res and (nb in l2_res or nb in llc_res):
                        lru = l1d_sets[nb & l1d_mask]
                        if len(lru) >= l1d_assoc:
                            victim = lru.pop(0)
                            l1d_res.discard(victim)
                            if victim in l1d_pf:
                                l1d_pf.discard(victim)
                        lru.append(nb)
                        l1d_res.add(nb)
                        l1d_pf.add(nb)
                if st:
                    td_bb += st
                    cycle += st
            elif kind == BRANCH:
                d_execs += arg
                if addr in trained:
                    mis = arg * steady
                    if mis:
                        bm += mis
                        mispredicts += mis
                        spec = mis * mis_penalty
                        td_bs += spec
                        cycle += spec
                else:
                    trained.add(addr)
                    d_cold += 1
                    d_btb_lookups += 1
                    key = addr >> 2
                    lru = btb_sets[key & btb_mask]
                    if key in lru:
                        if lru[-1] != key:
                            lru.remove(key)
                            lru.append(key)
                        bub = 0
                    else:
                        d_btb_misses += 1
                        if len(lru) >= btb_assoc:
                            lru.pop(0)
                        lru.append(key)
                        bub = 1
                    mis = 1.0
                    rem = arg - 1
                    if rem > 0:
                        mis += rem * steady
                    bm += mis
                    mispredicts += mis
                    spec = mis * mis_penalty
                    td_bs += spec
                    if bub:
                        bubbles += 1
                        td_fl += btb_penalty
                        cycle += spec + btb_penalty
                    else:
                        cycle += spec
            elif kind == LOOP:
                loop_spec = loops[arg]
                # _run_loop adds to the shared TopDownBreakdown: only its
                # fetch-latency adds are state-dependent, so that field
                # alone round-trips through the object (retiring and
                # fetch-bandwidth are overwritten by the precomputed
                # finals at the end of the run).
                td.fetch_latency = td_fl
                cycle = sim._run_loop(loop_spec, td, sources, cycle)
                td_fl = td.fetch_latency
                mispredicts += 1
                td_bs += mis_penalty
                cycle += mis_penalty
            else:  # pragma: no cover - trace construction prevents this
                raise ValueError(f"unknown trace event kind {kind}")

    def walk_scalar(lo: int, hi: int) -> None:
        """Per-event fallback for IFETCH walks whose bulk preconditions
        do not hold -- the same ``access_instr`` calls as the scalar
        backend."""
        nonlocal cycle, td_fl
        for i in range(lo, hi):
            stall, level = access_instr(addrs_l[i], cycle)
            sources[level] = sources.get(level, 0) + 1
            if stall:
                td_fl += stall
                cycle += (stall + retire_l[i]) + fb_l[i]
            else:
                cycle += step0_l[i]

    def walk_itlb(lo: int, hi: int, period: int, pattern) -> List[int]:
        """Exact I-TLB accounting for walks ``[lo, hi)``: each page run
        costs one live TLB access plus ``runlen - 1`` guaranteed hits
        (the page is MRU after its first access).  Returns the event
        indices whose access walked the page table."""
        miss_idx: List[int] = []
        hits = 0
        page_runs = pattern.page_runs
        for base in range(lo, hi, period):
            for off, page, runlen in page_runs:
                lru = itlb_sets[page & itlb_mask]
                if page in lru:
                    if lru[-1] != page:
                        lru.remove(page)
                        lru.append(page)
                    hits += runlen
                else:
                    if len(lru) >= itlb_assoc:
                        lru.pop(0)
                    lru.append(page)
                    miss_idx.append(base + off)
                    hits += runlen - 1
        stats.itlb.inst_hits += hits
        stats.itlb.inst_misses += len(miss_idx)
        return miss_idx

    def charge_hits(lo: int, hi: int, miss_idx: List[int]) -> None:
        """Charge all-L1-hit fetches: zero stall except an I-TLB walk at
        each ``miss_idx`` position.  Zero-stall events add nothing to
        fetch latency (``x + 0.0 == x``) and step the cycle by the
        precomputed ``step0`` column."""
        nonlocal cycle, td_fl
        if not miss_idx:
            if hi - lo >= _NP_FOLD_MIN:
                cycle = _seq_sum(cycle, step0_col[lo:hi])
            else:
                c = cycle
                for v in step0_l[lo:hi]:
                    c += v
                cycle = c
            return
        c = cycle
        fl = td_fl
        it = iter(miss_idx)
        nxt = next(it)
        for k in range(lo, hi):
            if k == nxt:
                fl += w_itlb
                c += (w_itlb + retire_l[k]) + fb_l[k]
                nxt = next(it, -1)
            else:
                c += step0_l[k]
        cycle = c
        td_fl = fl

    def charge_const(lo: int, hi: int, c0: float, cw: float, steps: list,
                     miss_idx: List[int]) -> None:
        """Charge fetches with a constant per-event stall ``c0`` (``cw``
        at I-TLB-walk positions).  ``steps`` is the precomputed
        ``(c0 + retire) + fb`` column for this stall constant."""
        nonlocal cycle, td_fl
        c = cycle
        fl = td_fl
        if not miss_idx:
            for k in range(lo, hi):
                fl += c0
                c += steps[k]
        else:
            it = iter(miss_idx)
            nxt = next(it, -1)
            for k in range(lo, hi):
                if k == nxt:
                    fl += cw
                    c += (cw + retire_l[k]) + fb_l[k]
                    nxt = next(it, -1)
                else:
                    fl += c0
                    c += steps[k]
        cycle = c
        td_fl = fl

    # Repeat-walk collapse.  Walks 2..k of a group replay walk 1's exact
    # access sequence, and LRU moves are idempotent under replay: after
    # walk 1 every touched line sits at the MRU end of its set in
    # last-access order, and re-touching them in the same order leaves
    # that order unchanged.  So once walk 1 proves (or establishes)
    # full L1-I residency -- and the I-TLB provably kept every pattern
    # page (walk 1 had no TLB miss, or ``pattern.itlb_fits`` bounds
    # pages-per-set by the associativity) -- the remaining walks are
    # guaranteed all-hits with *zero* state change: they reduce to one
    # cycle fold plus counter bumps.

    def fold_repeats(lo: int, hi: int) -> None:
        """Charge all-hit repeat walks ``[lo, hi)``: pure ``step0`` fold,
        no TLB/cache state to touch (see the idempotence note above)."""
        n = hi - lo
        stats.itlb.inst_hits += n
        charge_hits(lo, hi, _EMPTY)
        stats.l1i.inst_hits += n
        sources["l1"] = sources.get("l1", 0) + n

    def bulk_l1_hits(lo: int, hi: int, period: int, pattern) -> None:
        """Every remaining walk hits the L1-I: residency cannot change
        under hits, so all of ``[lo, hi)`` is charged at once."""
        first_hi = lo + period
        miss_idx = walk_itlb(lo, first_hi, period, pattern)
        charge_hits(lo, first_hi, miss_idx)
        stats.l1i.inst_hits += period
        sources["l1"] = sources.get("l1", 0) + period
        if first_hi < hi:
            if not miss_idx or pattern.itlb_fits(itlb_mask, itlb_assoc):
                fold_repeats(first_hi, hi)
            else:
                # Pathological page aliasing: account every walk live.
                miss_idx = walk_itlb(first_hi, hi, period, pattern)
                charge_hits(first_hi, hi, miss_idx)
                stats.l1i.inst_hits += hi - first_hi
                sources["l1"] = sources.get("l1", 0) + (hi - first_hi)
        l1i.bulk_reorder(summaries.groups(pattern, l1i))

    def bulk_l2_hits(lo: int, hi: int, period: int, pattern) -> int:
        """Walk 1 of ``[lo, hi)`` served entirely by the L2 (distinct
        blocks, none in the L1-I, no pending prefetch flags); repeat
        walks fold when the L1-I insert provably kept every block.
        Returns the first unconsumed event index."""
        first_hi = lo + period
        miss_idx = walk_itlb(lo, first_hi, period, pattern)
        charge_const(lo, first_hi, c_l2hit, cw_l2hit, steps_l2hit, miss_idx)
        stats.l1i.inst_misses += period
        stats.l2.inst_hits += period
        sources["l2"] = sources.get("l2", 0) + period
        fused = False
        if not l1i_pf:
            fused = pattern.groups_cache.get(fused_hit_key)
            if fused is None:
                p_l2 = summaries.groups(pattern, l2)
                p_l1 = summaries.groups(pattern, l1i)
                if p_l2.flat is None or p_l1.flat is None:
                    fused = False
                else:
                    # All-singleton groups list blocks in unique_last
                    # order for every mask, so the plans zip up
                    # block-for-block.
                    fused = [(si2, si1, blk)
                             for (si2, blk), (si1, _b) in zip(p_l2.flat,
                                                              p_l1.flat)]
                pattern.groups_cache[fused_hit_key] = fused
        if fused is not False:
            # Mirror upkeep is batched: victims cannot be this walk's
            # blocks (contains_none precondition), so one bulk difference
            # plus one bulk update lands the same final index.
            victims1: list = []
            v1ap = victims1.append
            for si2, si1, blk in fused:
                lru = l2_sets[si2]
                if lru[-1] != blk:
                    lru.remove(blk)
                    lru.append(blk)
                lru = l1i_sets[si1]
                if len(lru) >= l1i_assoc:
                    v1ap(lru[0])
                    del lru[0]
                lru.append(blk)
            if victims1:
                l1i_res.difference_update(victims1)
            l1i_res.update(pattern.unique_last)
            fits = True
        else:
            l2.bulk_reorder(summaries.groups(pattern, l2))
            plan = summaries.groups(pattern, l1i)
            l1i.bulk_insert_new(plan)
            fits = plan.max_group <= l1i_assoc
        if (first_hi < hi and fits
                and (not miss_idx
                     or pattern.itlb_fits(itlb_mask, itlb_assoc))):
            fold_repeats(first_hi, hi)
            return hi
        return first_hi

    def bulk_misses(lo: int, hi: int, period: int, pattern) -> int:
        """Walk 1 of ``[lo, hi)`` with distinct blocks resident nowhere
        on chip and no record hook: every fetch is a compulsory miss to
        DRAM.  Repeat walks fold as in :func:`bulk_l2_hits`.  Returns
        the first unconsumed event index."""
        first_hi = lo + period
        miss_idx = walk_itlb(lo, first_hi, period, pattern)
        charge_const(lo, first_hi, c_miss, cw_miss, steps_miss, miss_idx)
        stats.l1i.inst_misses += period
        stats.l2.inst_misses += period
        stats.llc.inst_misses += period
        memory.traffic.demand_inst += period * LINE_SIZE
        sources["memory"] = sources.get("memory", 0) + period
        fused = False
        if not (llc_pf or l2_pf or l1i_pf):
            fused = pattern.groups_cache.get(fused_miss_key)
            if fused is None:
                p_llc = summaries.groups(pattern, llc)
                p_l2 = summaries.groups(pattern, l2)
                p_l1 = summaries.groups(pattern, l1i)
                if (p_llc.flat is None or p_l2.flat is None
                        or p_l1.flat is None):
                    fused = False
                else:
                    fused = [(si3, si2, si1, blk)
                             for (si3, blk), (si2, _b), (si1, _c)
                             in zip(p_llc.flat, p_l2.flat, p_l1.flat)]
                pattern.groups_cache[fused_miss_key] = fused
        if fused is not False:
            # Batched mirror upkeep; see the note in bulk_l2_hits.
            victims3: list = []
            victims2: list = []
            victims1 = []
            v3ap = victims3.append
            v2ap = victims2.append
            v1ap = victims1.append
            for si3, si2, si1, blk in fused:
                lru = llc_sets[si3]
                if len(lru) >= llc_assoc:
                    v3ap(lru[0])
                    del lru[0]
                lru.append(blk)
                lru = l2_sets[si2]
                if len(lru) >= l2_assoc:
                    v2ap(lru[0])
                    del lru[0]
                lru.append(blk)
                lru = l1i_sets[si1]
                if len(lru) >= l1i_assoc:
                    v1ap(lru[0])
                    del lru[0]
                lru.append(blk)
            unique = pattern.unique_last
            if victims3:
                llc_res.difference_update(victims3)
            llc_res.update(unique)
            if victims2:
                l2_res.difference_update(victims2)
            l2_res.update(unique)
            if victims1:
                l1i_res.difference_update(victims1)
            l1i_res.update(unique)
            fits = True
        else:
            llc.bulk_insert_new(summaries.groups(pattern, llc))
            unused = l2.bulk_insert_new(summaries.groups(pattern, l2))
            if unused:
                stats.l2.prefetched_unused += unused
            plan = summaries.groups(pattern, l1i)
            l1i.bulk_insert_new(plan)
            fits = plan.max_group <= l1i_assoc
        if (first_hi < hi and fits
                and (not miss_idx
                     or pattern.itlb_fits(itlb_mask, itlb_assoc))):
            fold_repeats(first_hi, hi)
            return hi
        return first_hi

    for op in ct.ops:
        if op[0] == OP_EVENTS:
            span_events(op[1], op[2])
            continue
        _tag, lo, hi, period, pattern = op
        i = lo
        while i < hi:
            if queues_busy:
                # Fill queues only drain as simulated time advances (in
                # access_instr); re-check per walk until they empty.
                queues_busy = bool(l1i_fills.inflight or l1i_fills.pending
                                   or l2_fills.inflight or l2_fills.pending)
            if scalar_only or queues_busy:
                walk_scalar(i, i + period)
                i += period
                continue
            unique = pattern.unique_last
            if l1i.contains_all(unique):
                if l1i.pf_disjoint(pattern.block_set):
                    bulk_l1_hits(i, hi, period, pattern)
                    i = hi
                    continue
            elif pattern.all_distinct and l1i.contains_none(unique):
                if (l2.contains_all(unique)
                        and l2.pf_disjoint(pattern.block_set)):
                    i = bulk_l2_hits(i, hi, period, pattern)
                    continue
                if (hook is None and l2.contains_none(unique)
                        and llc.contains_none(unique)):
                    i = bulk_misses(i, hi, period, pattern)
                    continue
            # Mixed residency, pending prefetch flags, or an active record
            # hook: this walk takes the scalar reference path.
            walk_scalar(i, i + period)
            i += period

    # Flush the local accumulators back into the live structures.  The
    # integer deltas are added (no other code touched the data-side or
    # branch counters during the run); the float accumulators carry the
    # exact scalar add sequences.
    td.retiring = mc.ret_final
    td.fetch_bandwidth = mc.fb_final
    td.fetch_latency = td_fl
    td.bad_speculation = td_bs
    td.backend_bound = td_bb
    branches.mispredicts = bm
    branches.cold_mispredicts += d_cold
    branches.executions += d_execs
    btb.lookups += d_btb_lookups
    btb.misses += d_btb_misses
    stats.dtlb.data_hits += n_dtlb_h
    stats.dtlb.data_misses += n_dtlb_m
    stats.l1d.data_hits += n_l1d_h
    stats.l1d.data_misses += n_l1d_m
    stats.l1d.data_prefetch_hits += n_l1d_pfh
    stats.l2.data_hits += n_l2d_h
    stats.l2.data_misses += n_l2d_m
    stats.llc.data_hits += n_llc_dh
    stats.llc.data_misses += n_llc_dm
    memory.traffic.demand_data += mem_data_bytes

    result = InvocationResult(
        instructions=ct.instr_total,
        topdown=td,
        stats=stats.delta(stats_before),
        fetch_sources=sources,
        mispredicts=mispredicts,
        btb_bubbles=bubbles,
    )
    contracts.check_invocation(result)
    return result
