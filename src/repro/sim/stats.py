"""Statistics counters for caches, TLBs and memory.

The hierarchy distinguishes *instruction* from *data* traffic and *demand*
from *prefetch* traffic so the experiments can regenerate the paper's MPKI
breakdowns (Fig. 5), coverage plots (Fig. 11) and bandwidth plots (Fig. 12).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.lint import contracts


@dataclass
class AccessStats:
    """Hit/miss counters split by instruction vs. data traffic."""

    inst_hits: int = 0
    inst_misses: int = 0
    data_hits: int = 0
    data_misses: int = 0
    #: Demand accesses that hit a line installed by a prefetcher.
    inst_prefetch_hits: int = 0
    data_prefetch_hits: int = 0
    #: Lines installed by a prefetcher that were evicted unused.
    prefetched_unused: int = 0

    @property
    def accesses(self) -> int:
        return self.inst_hits + self.inst_misses + self.data_hits + self.data_misses

    @property
    def hits(self) -> int:
        return self.inst_hits + self.data_hits

    @property
    def misses(self) -> int:
        return self.inst_misses + self.data_misses

    def mpki(self, instructions: int, kind: str = "all") -> float:
        """Misses per kilo-instruction for ``kind`` in {'inst','data','all'}."""
        if instructions <= 0:
            return 0.0
        if kind == "inst":
            misses = self.inst_misses
        elif kind == "data":
            misses = self.data_misses
        elif kind == "all":
            misses = self.misses
        else:
            raise ValueError(f"unknown miss kind {kind!r}")
        return 1000.0 * misses / instructions

    def snapshot(self) -> "AccessStats":
        return AccessStats(
            inst_hits=self.inst_hits,
            inst_misses=self.inst_misses,
            data_hits=self.data_hits,
            data_misses=self.data_misses,
            inst_prefetch_hits=self.inst_prefetch_hits,
            data_prefetch_hits=self.data_prefetch_hits,
            prefetched_unused=self.prefetched_unused,
        )

    def delta(self, earlier: "AccessStats") -> "AccessStats":
        """Return counters accumulated since ``earlier`` (a snapshot)."""
        return AccessStats(
            inst_hits=self.inst_hits - earlier.inst_hits,
            inst_misses=self.inst_misses - earlier.inst_misses,
            data_hits=self.data_hits - earlier.data_hits,
            data_misses=self.data_misses - earlier.data_misses,
            inst_prefetch_hits=self.inst_prefetch_hits - earlier.inst_prefetch_hits,
            data_prefetch_hits=self.data_prefetch_hits - earlier.data_prefetch_hits,
            prefetched_unused=self.prefetched_unused - earlier.prefetched_unused,
        )

    def reset(self) -> None:
        self.inst_hits = 0
        self.inst_misses = 0
        self.data_hits = 0
        self.data_misses = 0
        self.inst_prefetch_hits = 0
        self.data_prefetch_hits = 0
        self.prefetched_unused = 0

    def validate(self, name: str = "") -> None:
        """Contract check: counters balance and nothing went negative."""
        contracts.check_access_stats(self, name=name)

    def publish(self, registry, prefix: str) -> None:
        """Publish counters into a :class:`repro.obs.MetricsRegistry`.

        Counter names are ``<prefix>.<field>``; values are *added*, so
        publishing per-invocation deltas accumulates totals across a run.
        """
        registry.counter(f"{prefix}.inst_hits").inc(self.inst_hits)
        registry.counter(f"{prefix}.inst_misses").inc(self.inst_misses)
        registry.counter(f"{prefix}.data_hits").inc(self.data_hits)
        registry.counter(f"{prefix}.data_misses").inc(self.data_misses)
        registry.counter(f"{prefix}.inst_prefetch_hits").inc(
            self.inst_prefetch_hits)
        registry.counter(f"{prefix}.data_prefetch_hits").inc(
            self.data_prefetch_hits)
        registry.counter(f"{prefix}.prefetched_unused").inc(
            self.prefetched_unused)


@dataclass
class MemoryTraffic:
    """DRAM traffic accounting in bytes, by traffic class (Fig. 12)."""

    demand_inst: int = 0
    demand_data: int = 0
    prefetch_useful: int = 0
    prefetch_overpredicted: int = 0
    metadata_record: int = 0
    metadata_replay: int = 0

    @property
    def total(self) -> int:
        return (
            self.demand_inst
            + self.demand_data
            + self.prefetch_useful
            + self.prefetch_overpredicted
            + self.metadata_record
            + self.metadata_replay
        )

    @property
    def baseline_equivalent(self) -> int:
        """Traffic that a no-prefetcher baseline would also incur.

        Correct timely prefetches replace demand fetches one-for-one
        (Sec. 5.4: "Jukebox does not change the amount of bandwidth consumed
        for correct timely prefetches"), so the baseline-equivalent traffic
        is demand plus useful-prefetch bytes.
        """
        return self.demand_inst + self.demand_data + self.prefetch_useful

    @property
    def overhead(self) -> int:
        """Extra bytes relative to the no-prefetcher baseline."""
        return (
            self.prefetch_overpredicted + self.metadata_record + self.metadata_replay
        )

    def overhead_fraction(self) -> float:
        base = self.baseline_equivalent
        if base == 0:
            return 0.0
        return self.overhead / base

    def snapshot(self) -> "MemoryTraffic":
        return MemoryTraffic(
            demand_inst=self.demand_inst,
            demand_data=self.demand_data,
            prefetch_useful=self.prefetch_useful,
            prefetch_overpredicted=self.prefetch_overpredicted,
            metadata_record=self.metadata_record,
            metadata_replay=self.metadata_replay,
        )

    def delta(self, earlier: "MemoryTraffic") -> "MemoryTraffic":
        return MemoryTraffic(
            demand_inst=self.demand_inst - earlier.demand_inst,
            demand_data=self.demand_data - earlier.demand_data,
            prefetch_useful=self.prefetch_useful - earlier.prefetch_useful,
            prefetch_overpredicted=(
                self.prefetch_overpredicted - earlier.prefetch_overpredicted
            ),
            metadata_record=self.metadata_record - earlier.metadata_record,
            metadata_replay=self.metadata_replay - earlier.metadata_replay,
        )

    def reset(self) -> None:
        self.demand_inst = 0
        self.demand_data = 0
        self.prefetch_useful = 0
        self.prefetch_overpredicted = 0
        self.metadata_record = 0
        self.metadata_replay = 0

    def validate(self, name: str = "memory traffic") -> None:
        """Contract check: demand/metadata traffic classes are sane."""
        contracts.check_memory_traffic(self, name=name)

    def publish(self, registry, prefix: str) -> None:
        """Publish byte counters into a :class:`repro.obs.MetricsRegistry`."""
        registry.counter(f"{prefix}.demand_inst").inc(self.demand_inst)
        registry.counter(f"{prefix}.demand_data").inc(self.demand_data)
        # The two prefetch classes are only meaningful in aggregate (credits
        # re-classify bytes between them), so clamp transient negatives.
        registry.counter(f"{prefix}.prefetch_useful").inc(
            max(0, self.prefetch_useful))
        registry.counter(f"{prefix}.prefetch_overpredicted").inc(
            max(0, self.prefetch_overpredicted))
        registry.counter(f"{prefix}.metadata_record").inc(
            self.metadata_record)
        registry.counter(f"{prefix}.metadata_replay").inc(
            self.metadata_replay)


@dataclass
class HierarchyStats:
    """Per-level access stats plus DRAM traffic for one hierarchy."""

    l1i: AccessStats = field(default_factory=AccessStats)
    l1d: AccessStats = field(default_factory=AccessStats)
    l2: AccessStats = field(default_factory=AccessStats)
    llc: AccessStats = field(default_factory=AccessStats)
    itlb: AccessStats = field(default_factory=AccessStats)
    dtlb: AccessStats = field(default_factory=AccessStats)
    memory: MemoryTraffic = field(default_factory=MemoryTraffic)

    def levels(self) -> Dict[str, AccessStats]:
        return {
            "l1i": self.l1i,
            "l1d": self.l1d,
            "l2": self.l2,
            "llc": self.llc,
            "itlb": self.itlb,
            "dtlb": self.dtlb,
        }

    def snapshot(self) -> "HierarchyStats":
        return HierarchyStats(
            l1i=self.l1i.snapshot(),
            l1d=self.l1d.snapshot(),
            l2=self.l2.snapshot(),
            llc=self.llc.snapshot(),
            itlb=self.itlb.snapshot(),
            dtlb=self.dtlb.snapshot(),
            memory=self.memory.snapshot(),
        )

    def delta(self, earlier: "HierarchyStats") -> "HierarchyStats":
        return HierarchyStats(
            l1i=self.l1i.delta(earlier.l1i),
            l1d=self.l1d.delta(earlier.l1d),
            l2=self.l2.delta(earlier.l2),
            llc=self.llc.delta(earlier.llc),
            itlb=self.itlb.delta(earlier.itlb),
            dtlb=self.dtlb.delta(earlier.dtlb),
            memory=self.memory.delta(earlier.memory),
        )

    def reset(self) -> None:
        for stats in self.levels().values():
            stats.reset()
        self.memory.reset()

    def validate(self, name: str = "hierarchy") -> None:
        """Contract check across every level plus DRAM traffic."""
        contracts.check_hierarchy_stats(self, name=name)

    def publish(self, registry, prefix: str = "sim") -> None:
        """Publish every level plus DRAM traffic under ``<prefix>.*``."""
        for level, stats in self.levels().items():
            stats.publish(registry, f"{prefix}.{level}")
        self.memory.publish(registry, f"{prefix}.memory")
