"""The memory hierarchy: L1-I, L1-D, private unified L2, shared LLC, TLBs
and DRAM, plus the prefetch-fill plumbing Jukebox and PIF hook into.

Demand accesses are *charged* stall cycles according to the level that
serves them, scaled by the core's overlap factors (see
:class:`repro.sim.params.CoreParams`).  Raw and charged latencies are both
returned so callers can account Top-Down categories.

Prefetch fills arrive through two scheduled queues:

* the **L2 fill queue** (Jukebox replay, Sec. 3.3): entries carry a
  completion cycle computed from the DRAM streaming bandwidth; fills are
  drained into the L2 lazily as simulated time advances.  A demand miss to
  a block whose fill is still in flight merges with it and waits only the
  remaining time (a *late* prefetch).
* the **L1-I fill queue** (PIF, Sec. 5.5) with the same semantics.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Tuple

from repro.sim.cache import GroupPlan, SetAssocCache
from repro.sim.memory import MainMemory
from repro.sim.params import MachineParams
from repro.sim.stats import HierarchyStats
from repro.sim.tlb import TLB
from repro.units import LINE_SHIFT, PAGE_SHIFT

#: Cap on memoized region-summary entries per hierarchy.  Entries are small
#: (a few dozen ints); the cap only guards against unbounded growth when one
#: worker process executes many distinct functions.
SUMMARY_CACHE_ENTRIES = 8192


class RecordHook(Protocol):
    """Callback interface for prefetcher record logic.

    A hook whose :meth:`on_fetch` is a no-op (record logic keyed purely on
    L2 misses, like Jukebox's) may advertise it with a class attribute
    ``fetch_is_noop = True``; the columnar backend then keeps its bulk
    hit paths (which never reach the L2-miss callbacks) enabled while the
    hook is installed.  Omitting the attribute is always safe -- it only
    costs the fast path.
    """

    def on_l2_inst_miss(self, block_vaddr: int, cycle: float) -> None:
        """Called when an L1-I miss also missed in the L2 (Sec. 3.2)."""

    def on_fetch(self, block_vaddr: int, cycle: float) -> None:
        """Called on every demand instruction-block fetch (PIF training)."""


class FillQueue:
    """A time-ordered queue of prefetch fills heading to one cache level."""

    def __init__(self) -> None:
        self._schedule: List[Tuple[float, int]] = []
        self._next = 0
        self.inflight: Dict[int, float] = {}

    def schedule(self, fills: List[Tuple[float, int]]) -> None:
        """Append ``(completion_cycle, block)`` fills (must be time-ordered)."""
        self._schedule.extend(fills)
        for completion, block in fills:
            # Keep the earliest completion if a block is scheduled twice.
            if block not in self.inflight or completion < self.inflight[block]:
                self.inflight[block] = completion

    def drain(self, cycle: float) -> List[int]:
        """Pop all fills with completion <= ``cycle``; return their blocks."""
        done: List[int] = []
        sched = self._schedule
        i = self._next
        n = len(sched)
        while i < n and sched[i][0] <= cycle:
            block = sched[i][1]
            done.append(block)
            self.inflight.pop(block, None)
            i += 1
        self._next = i
        return done

    def completion_of(self, block: int) -> Optional[float]:
        return self.inflight.get(block)

    def take(self, block: int) -> None:
        """Remove ``block`` from in-flight (a demand merge consumed it)."""
        self.inflight.pop(block, None)

    @property
    def pending(self) -> int:
        return len(self._schedule) - self._next

    def clear(self) -> None:
        self._schedule.clear()
        self._next = 0
        self.inflight.clear()


class RegionSummaries:
    """Memoized per-region summaries for the columnar backend.

    A *region* is one :class:`repro.workloads.trace.WalkPattern` -- the
    period of a repeated instruction-block walk.  The batch interpreter
    needs each region's blocks grouped by cache set (per level geometry)
    to apply bulk LRU updates; those groupings are pure functions of
    ``(pattern, set mask)``, so they are computed once and reused across
    every invocation of the same function -- the same segment walked in
    invocation 40 reuses the tables built in invocation 0.

    Owned by a :class:`MemoryHierarchy` (never module state: worker
    processes must not share mutable globals) and deliberately *not*
    cleared by :meth:`MemoryHierarchy.flush_caches` -- flushing changes
    residency, not geometry.
    """

    def __init__(self) -> None:
        self._groups: Dict[tuple, GroupPlan] = {}

    def groups(self, pattern, cache: SetAssocCache) -> GroupPlan:
        """``pattern.unique_last`` grouped by set for ``cache``'s geometry,
        as a :class:`~repro.sim.cache.GroupPlan`.

        Two memo tiers: the pattern object's own ``groups_cache`` (cheap
        integer key, hit by every repeat walk within a trace) backed by
        the content-keyed shared table (hit by the same segment appearing
        in other invocations' traces, whose patterns are distinct
        objects)."""
        mask = cache._set_mask
        plan = pattern.groups_cache.get(mask)
        if plan is None:
            key = (pattern.key, mask)
            plan = self._groups.get(key)
            if plan is None:
                if len(self._groups) >= SUMMARY_CACHE_ENTRIES:
                    self._groups.clear()
                plan = GroupPlan(cache.set_groups(pattern.unique_last))
                self._groups[key] = plan
            pattern.groups_cache[mask] = plan
        return plan


class MemoryHierarchy:
    """A full private-L1/L2 + shared-LLC hierarchy for one core."""

    def __init__(self, machine: MachineParams) -> None:
        self.machine = machine
        self.stats = HierarchyStats()
        self.l1i = SetAssocCache(machine.l1i)
        self.l1d = SetAssocCache(machine.l1d)
        self.l2 = SetAssocCache(machine.l2)
        self.llc = SetAssocCache(machine.llc)
        self.itlb = TLB(machine.itlb)
        self.dtlb = TLB(machine.dtlb)
        self.memory = MainMemory(machine.memory, self.stats.memory)
        #: Prefetch fill queues (Jukebox -> L2, PIF -> L1-I).
        self.l2_fills = FillQueue()
        self.l1i_fills = FillQueue()
        #: Optional prefetcher hooks (record logic / PIF training).
        self.record_hook: Optional[RecordHook] = None
        #: Memoized per-region tables for the columnar backend; survives
        #: cache flushes (geometry, not residency).
        self.region_summaries = RegionSummaries()
        #: Perfect-I-cache mode: an infinite magic I-cache that accumulates
        #: the union footprint across invocations and survives flushes
        #: (Sec. 5.2, configuration (3)).
        self.perfect_icache = False
        self._perfect_blocks: set = set()
        #: Next-line prefetch for the L1-D (Table 1).
        self.l1d_next_line = True
        #: Whether completed L1-I prefetch fills also allocate in L2/LLC
        #: (the normal fill path).  The prefetch-into-L1-I ablation sets
        #: this False to model non-allocating L1-only prefetch requests.
        self.l1i_fill_allocates_lower = True
        # Cached core overlap factors (hot path).
        core = machine.core
        self._f_onchip = core.inst_stall_onchip
        self._f_dram = core.inst_stall_dram
        self._f_data = 1.0 - core.data_overlap
        self._itlb_walk = machine.itlb.walk_latency
        self._dtlb_walk = machine.dtlb.walk_latency
        self._l2_lat = machine.l2.latency
        self._llc_lat = machine.llc.latency

    # ------------------------------------------------------------------
    # Demand paths
    # ------------------------------------------------------------------

    def access_instr(self, addr: int, cycle: float) -> Tuple[float, str]:
        """Demand instruction fetch of the block containing ``addr``.

        Returns ``(charged_stall_cycles, serving_level)`` where the level is
        one of ``l1 | l2 | llc | memory | prefetch_late | perfect``.
        """
        block = addr >> LINE_SHIFT
        stats = self.stats
        stall = 0.0

        if not self.itlb.access(addr >> PAGE_SHIFT):
            stats.itlb.inst_misses += 1
            stall += self._itlb_walk * self._f_onchip
        else:
            stats.itlb.inst_hits += 1

        hook = self.record_hook
        if hook is not None:
            hook.on_fetch(addr, cycle)

        if self.l1i_fills.inflight or self.l1i_fills.pending:
            for b in self.l1i_fills.drain(cycle):
                # A completed L1-I prefetch fill also installs into the
                # lower levels it travelled through.
                if self.l1i_fill_allocates_lower and not self.l2.contains(b):
                    self.llc.insert(b, prefetch=True)
                    self.l2.insert(b, prefetch=True)
                self.l1i.insert(b, prefetch=True)
        if self.l2_fills.inflight or self.l2_fills.pending:
            for b in self.l2_fills.drain(cycle):
                # Replay fills take the normal fill path: they install into
                # the (non-inclusive) LLC as well, so a prefetched line
                # conflict-evicted from a small L2 can still be served from
                # the LLC (the Broadwell effect of Table 3).
                self.llc.insert(b, prefetch=True)
                _evicted, unused = self.l2.insert(b, prefetch=True)
                if unused:
                    stats.l2.prefetched_unused += 1

        if self.perfect_icache and block in self._perfect_blocks:
            stats.l1i.inst_hits += 1
            return stall, "perfect"

        hit, was_pf = self.l1i.lookup(block)
        if hit:
            stats.l1i.inst_hits += 1
            if was_pf:
                stats.l1i.inst_prefetch_hits += 1
                self._first_use_of_prefetched_line(block, addr, cycle, hook)
            if self.perfect_icache:
                self._perfect_blocks.add(block)
            return stall, "l1"
        stats.l1i.inst_misses += 1
        l1i_inflight = self.l1i_fills.completion_of(block)
        if l1i_inflight is not None:
            l2_inflight = self.l2_fills.completion_of(block)
            if self.l2.contains(block) or (
                    l2_inflight is not None and l2_inflight <= l1i_inflight):
                # The line is already on-chip or an earlier Jukebox replay
                # fill will deliver it sooner: the demand takes the L2
                # path; the slower in-flight L1-I prefetch is moot.
                self.l1i_fills.take(block)
                l1i_inflight = None
        if l1i_inflight is not None:
            # Merge with an in-flight PIF prefetch (late coverage).  The
            # wait costs what a demand miss of the same remaining depth
            # would: a prefetch issued moments before the demand arrives
            # buys nothing (this is the re-indexing penalty that caps PIF,
            # Sec. 5.5).
            self.l1i_fills.take(block)
            # Serial dependency: the core waits out the remaining fill time
            # in full -- the MLP discount (inst_stall_dram) only applies to
            # independent demand misses overlapped by fetch-ahead; a core
            # chained to its own prefetcher's fill queue gets no overlap.
            # Capped at the demand-equivalent charge: merging with an MSHR
            # is never slower than issuing the demand miss itself.
            demand_equiv = ((self._l2_lat + self._llc_lat) * self._f_onchip
                            + self.memory.params.latency * self._f_dram)
            stall += min(max(0.0, l1i_inflight - cycle), demand_equiv)
            stats.l1i.inst_prefetch_hits += 1
            if self.l1i_fill_allocates_lower and not self.l2.contains(block):
                self.llc.insert(block)
                self.l2.insert(block)
            self._first_use_of_prefetched_line(block, addr, cycle, hook)
            self.l1i.insert(block)
            if self.perfect_icache:
                self._perfect_blocks.add(block)
            return stall, "l1_prefetch_late"
        if self.perfect_icache:
            self._perfect_blocks.add(block)

        level: str
        hit, was_pf = self.l2.lookup(block)
        if hit:
            stats.l2.inst_hits += 1
            if was_pf:
                stats.l2.inst_prefetch_hits += 1
                self.memory.credit_useful_prefetch()
                self.llc.clear_prefetch_flag(block)
                # The first use of a prefetched line is recorded as if it
                # had missed: without this, metadata recorded *while a
                # replay covers the working set* would be empty and the
                # design would oscillate between covered and uncovered
                # invocations (an implementation detail the paper leaves
                # implicit; see DESIGN.md).
                if hook is not None:
                    hook.on_l2_inst_miss(addr, cycle)
            stall += self._l2_lat * self._f_onchip
            level = "l2"
        else:
            stats.l2.inst_misses += 1
            if hook is not None:
                hook.on_l2_inst_miss(addr, cycle)
            inflight = self.l2_fills.completion_of(block)
            if inflight is not None:
                # Merge with the in-flight Jukebox prefetch: wait for it,
                # then take an L2 hit.  Counts as (late) coverage.
                self.l2_fills.take(block)
                wait = max(0.0, inflight - cycle)
                # Same serial-wait rule and demand-equivalent cap as for
                # L1-I merges (see above).
                demand_equiv = (self._llc_lat * self._f_onchip
                                + self.memory.params.latency * self._f_dram)
                stall += min(wait, demand_equiv) + self._l2_lat * self._f_onchip
                stats.l2.inst_prefetch_hits += 1
                self.memory.credit_useful_prefetch()
                self.llc.clear_prefetch_flag(block)
                # The line was charged to prefetch traffic when scheduled.
                self._fill_after_l2_inst_miss(block, fill_llc=True)
                level = "prefetch_late"
            else:
                hit_llc, llc_pf = self.llc.lookup(block)
                contention = self.memory.contention
                if hit_llc:
                    stats.llc.inst_hits += 1
                    if llc_pf:
                        stats.llc.inst_prefetch_hits += 1
                        self.memory.credit_useful_prefetch()
                    # The shared LLC and interconnect queue behind
                    # co-tenant traffic on a loaded server.
                    stall += ((self._l2_lat + self._llc_lat * contention)
                              * self._f_onchip)
                    level = "llc"
                else:
                    stats.llc.inst_misses += 1
                    raw = self.memory.demand_fetch(instruction=True)
                    stall += ((self._l2_lat + self._llc_lat * contention)
                              * self._f_onchip)
                    stall += raw * self._f_dram
                    level = "memory"
                self._fill_after_l2_inst_miss(block, fill_llc=not hit_llc)
        self.l1i.insert(block)
        return stall, level

    def _first_use_of_prefetched_line(self, block: int, addr: int,
                                      cycle: float, hook) -> None:
        """A demand reference consumed a prefetched line at the L1-I: mark
        the lower-level copies used (bandwidth credit) and let the record
        logic see the first use, exactly as on an L2 prefetched hit --
        otherwise prefetchers stacked above the L2 would starve Jukebox's
        record stream."""
        used_l2 = self.l2.clear_prefetch_flag(block)
        used_llc = self.llc.clear_prefetch_flag(block)
        if used_l2 or used_llc:
            self.memory.credit_useful_prefetch()
            if hook is not None:
                hook.on_l2_inst_miss(addr, cycle)

    def _fill_after_l2_inst_miss(self, block: int, fill_llc: bool) -> None:
        if fill_llc:
            self.llc.insert(block)
        _, unused = self.l2.insert(block)
        if unused:
            self.stats.l2.prefetched_unused += 1

    def access_data(self, addr: int, write: bool, cycle: float) -> Tuple[float, str]:
        """Demand data access.  Returns ``(charged_stall_cycles, level)``."""
        block = addr >> LINE_SHIFT
        stats = self.stats
        stall = 0.0

        if not self.dtlb.access(addr >> PAGE_SHIFT):
            stats.dtlb.data_misses += 1
            stall += self._dtlb_walk * self._f_data
        else:
            stats.dtlb.data_hits += 1

        hit, was_pf = self.l1d.lookup(block)
        if hit:
            stats.l1d.data_hits += 1
            if was_pf:
                stats.l1d.data_prefetch_hits += 1
            return stall, "l1"
        stats.l1d.data_misses += 1

        # Stores miss into a write-allocate hierarchy but do not stall the
        # core (they retire through the store buffer).
        charge = 0.0 if write else 1.0

        hit, _ = self.l2.lookup(block)
        if hit:
            stats.l2.data_hits += 1
            stall += self._l2_lat * self._f_data * charge
            level = "l2"
        else:
            stats.l2.data_misses += 1
            hit_llc, _ = self.llc.lookup(block)
            contention = self.memory.contention
            if hit_llc:
                stats.llc.data_hits += 1
                stall += ((self._l2_lat + self._llc_lat * contention)
                          * self._f_data * charge)
                level = "llc"
            else:
                stats.llc.data_misses += 1
                raw = self.memory.demand_fetch(instruction=False)
                stall += ((self._l2_lat + self._llc_lat * contention + raw)
                          * self._f_data * charge)
                level = "memory"
                self.llc.insert(block)
            self.l2.insert(block)
        self.l1d.insert(block)
        if self.l1d_next_line:
            self._next_line_fill(block + 1)
        return stall, level

    def _next_line_fill(self, block: int) -> None:
        """L1-D next-line prefetch: fill from L2/LLC if present on-chip."""
        if self.l1d.contains(block):
            return
        if self.l2.contains(block) or self.llc.contains(block):
            self.l1d.insert(block, prefetch=True)

    # ------------------------------------------------------------------
    # Prefetch entry points
    # ------------------------------------------------------------------

    def schedule_l2_prefetches(self, fills: List[Tuple[float, int]]) -> None:
        """Schedule Jukebox replay fills (blocks given as *block numbers*)."""
        for _, _block in fills:
            self.memory.prefetch_fetch()
        self.l2_fills.schedule(fills)

    def schedule_l1i_prefetches(self, fills: List[Tuple[float, int]]) -> None:
        """Schedule PIF fills into the L1-I."""
        self.l1i_fills.schedule(fills)

    def prefetch_source_latency(self, block: int) -> Tuple[float, bool]:
        """Latency to fetch ``block`` for a prefetcher, and whether the fill
        comes from DRAM.  Does not disturb LRU state and installs nothing:
        the line only becomes visible when its fill completes (the fill
        queue installs it into L1-I/L2/LLC at drain time)."""
        if self.l2.contains(block):
            return float(self._l2_lat), False
        if self.llc.contains(block):
            return float(self._l2_lat + self._llc_lat), False
        latency = self.memory.prefetch_fetch()
        return float(self._l2_lat + self._llc_lat + latency), True

    def finish_invocation(self) -> None:
        """Flush fill queues at invocation end; remaining in-flight or
        never-referenced prefetched lines count as overpredictions when
        they are evicted or when stats are collected."""
        for b in self.l2_fills.drain(float("inf")):
            self.llc.insert(b, prefetch=True)
            _, unused = self.l2.insert(b, prefetch=True)
            if unused:
                self.stats.l2.prefetched_unused += 1
        self.l2_fills.clear()
        for b in self.l1i_fills.drain(float("inf")):
            if not self.l2.contains(b):
                self.llc.insert(b, prefetch=True)
                self.l2.insert(b, prefetch=True)
            self.l1i.insert(b, prefetch=True)
        self.l1i_fills.clear()

    # ------------------------------------------------------------------
    # State management for interleaving experiments
    # ------------------------------------------------------------------

    def flush_caches(self) -> None:
        """Flush all caches and TLBs (the paper's interleaved baseline,
        Sec. 5.2).  The perfect-I-cache set survives by design."""
        self.l1i.flush()
        self.l1d.flush()
        self.l2.flush()
        self.llc.flush()
        self.itlb.flush()
        self.dtlb.flush()
        self.l2_fills.clear()
        self.l1i_fills.clear()

    def unused_prefetches_resident(self) -> int:
        """Prefetched lines sitting in the L2 never demand-referenced."""
        return self.l2.pending_prefetches
