"""Simulation substrate: caches, TLBs, DRAM, branch prediction and the
analytic core timing model (the gem5 stand-in, DESIGN.md Sec. 1)."""

from repro.sim.cache import SetAssocCache
from repro.sim.core import BACKENDS, InvocationResult, LukewarmCore, Simulator
from repro.sim.hierarchy import FillQueue, MemoryHierarchy, RegionSummaries
from repro.sim.params import (
    BROADWELL,
    SKYLAKE,
    CacheParams,
    CoreParams,
    JukeboxParams,
    MachineParams,
    MemoryParams,
    MODE_CHARACTERIZATION,
    MODE_EVALUATION,
    TLBParams,
    broadwell,
    skylake,
)
from repro.sim.simulate import simulate
from repro.sim.stats import AccessStats, HierarchyStats, MemoryTraffic
from repro.sim.topdown import TopDownBreakdown, mean_breakdown

__all__ = [
    "AccessStats",
    "BACKENDS",
    "BROADWELL",
    "CacheParams",
    "CoreParams",
    "FillQueue",
    "HierarchyStats",
    "InvocationResult",
    "JukeboxParams",
    "LukewarmCore",
    "MachineParams",
    "MemoryParams",
    "MemoryTraffic",
    "MemoryHierarchy",
    "MODE_CHARACTERIZATION",
    "MODE_EVALUATION",
    "RegionSummaries",
    "SKYLAKE",
    "SetAssocCache",
    "Simulator",
    "TLBParams",
    "TopDownBreakdown",
    "broadwell",
    "mean_breakdown",
    "simulate",
    "skylake",
]
