"""Set-associative cache model with LRU replacement.

The cache operates on *block numbers* (byte address >> 6).  It tracks which
resident lines were installed by a prefetcher and not yet referenced, so the
hierarchy can account prefetch hits (coverage) and unused prefetches
(overprediction) for Figs. 11 and 12.

Two pollution primitives support the interleaving experiments:

* :meth:`SetAssocCache.pollute` touches ``n`` distinct synthetic blocks
  through the normal insertion path (exact but O(n));
* :meth:`SetAssocCache.bulk_pollute` applies the statistically equivalent
  per-set eviction count directly (O(sets)), which makes the Fig. 1 IAT
  sweep tractable.  A property-based test checks the two agree in
  distribution.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.lint import contracts
from repro.sim.params import CacheParams

#: Tag bit used to mark synthetic pollution lines so they can never collide
#: with real (48-bit virtual address) blocks.
_POLLUTION_BIT = 1 << 60


class GroupPlan:
    """Per-set grouping of a block pattern for one cache geometry.

    Wraps the ``set_groups`` result with the two derived facts the bulk
    paths exploit: ``flat`` is a ``[(set_index, block), ...]`` list when
    every group is a singleton (the overwhelmingly common case -- a short
    pattern spread across many sets), letting :meth:`SetAssocCache.\
bulk_reorder` and :meth:`SetAssocCache.bulk_insert_new` skip the general
    per-group machinery; ``max_group`` bounds how many pattern blocks
    share one set, which callers compare against ``assoc`` to prove that
    a bulk insert left *every* pattern block resident.
    """

    __slots__ = ("groups", "flat", "max_group")

    def __init__(self, groups: List[Tuple[int, List[int], frozenset]]) -> None:
        self.groups = groups
        max_group = 0
        for _idx, ordered, _members in groups:
            if len(ordered) > max_group:
                max_group = len(ordered)
        self.max_group = max_group
        self.flat: Optional[List[Tuple[int, int]]] = None
        if max_group <= 1:
            self.flat = [(set_idx, ordered[0])
                         for set_idx, ordered, _members in groups]


class SetAssocCache:
    """A set-associative, write-allocate cache with true-LRU replacement."""

    def __init__(self, params: CacheParams) -> None:
        self.params = params
        self.num_sets = params.num_sets
        self.assoc = params.assoc
        self._set_mask = self.num_sets - 1
        #: One LRU-ordered list of block tags per set; MRU at the end.
        self._sets: List[List[int]] = [[] for _ in range(self.num_sets)]
        #: Blocks installed by a prefetcher and not yet demand-referenced.
        self._pf_pending: Set[int] = set()
        #: O(1) residency index mirroring the union of all set lists.
        #: Tags are full block ids (not per-set tags), so a block is
        #: resident in the cache iff it is in this set.  Every membership
        #: mutation below maintains it; LRU reordering does not touch it.
        self._resident: Set[int] = set()
        self._pollution_seq = 0

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------

    def lookup(self, block: int) -> Tuple[bool, bool]:
        """Demand-look up ``block``.

        Returns ``(hit, was_prefetched)`` where ``was_prefetched`` is True
        when this is the first demand reference to a prefetched line.
        Updates LRU order on a hit; does *not* insert on a miss
        (use :meth:`insert`).
        """
        lru = self._sets[block & self._set_mask]
        if block in lru:
            if lru[-1] != block:
                lru.remove(block)
                lru.append(block)
            if block in self._pf_pending:
                self._pf_pending.discard(block)
                return True, True
            return True, False
        return False, False

    def contains(self, block: int) -> bool:
        """Return True if ``block`` is resident (no LRU side effects)."""
        return block in self._resident

    def insert(self, block: int, prefetch: bool = False) -> Tuple[Optional[int], bool]:
        """Install ``block`` as the MRU line of its set.

        Returns ``(evicted_block, evicted_unused_prefetch)``.  Inserting an
        already-resident block refreshes its LRU position (and its prefetch
        flag, if ``prefetch`` is False, is cleared: a demand insert of a
        prefetched line counts as its use).
        """
        lru = self._sets[block & self._set_mask]
        evicted: Optional[int] = None
        evicted_unused = False
        if block in lru:
            lru.remove(block)
            lru.append(block)
            if not prefetch:
                self._pf_pending.discard(block)
            return None, False
        if len(lru) >= self.assoc:
            evicted = lru.pop(0)
            self._resident.discard(evicted)
            if evicted in self._pf_pending:
                self._pf_pending.discard(evicted)
                evicted_unused = True
        lru.append(block)
        self._resident.add(block)
        if prefetch:
            self._pf_pending.add(block)
        return evicted, evicted_unused

    # ------------------------------------------------------------------
    # Bulk operations for the columnar backend (repro.sim.batch)
    #
    # Each bulk method is the exact aggregate of a sequence of the scalar
    # operations above: the batch interpreter proves the preconditions
    # (residency, distinctness, prefetch-flag disjointness) *before*
    # calling, and the per-set effect is computed in one pass instead of
    # one lookup()/insert() per event.  Sets are independent, so applying
    # the per-set aggregate preserves the event-order semantics bit for
    # bit.
    # ------------------------------------------------------------------

    def set_groups(self, blocks: Sequence[int]) -> List[Tuple[int, List[int], frozenset]]:
        """Group ``blocks`` (kept in order) by the set they map to.

        Returns ``[(set_index, blocks_in_order, block_set), ...]`` -- the
        shape both bulk operations consume.  Group order follows first
        occurrence, so the result is deterministic for a given input.
        """
        mask = self._set_mask
        grouped: "dict[int, List[int]]" = {}
        for block in blocks:
            grouped.setdefault(block & mask, []).append(block)
        return [(set_idx, members, frozenset(members))
                for set_idx, members in grouped.items()]

    def bulk_reorder(self, plan: "GroupPlan") -> None:
        """Aggregate LRU effect of demand-hitting every planned block.

        Equivalent to calling :meth:`lookup` once per block in access
        order, provided every block is resident and none carries a pending
        prefetch flag: untouched lines keep their relative order at the
        LRU end, touched lines move to the MRU end in last-access order
        (which is the order the plan carries them in).
        """
        sets = self._sets
        if plan.flat is not None:
            # Singleton groups: the lookup() LRU move, directly.
            for set_idx, block in plan.flat:
                lru = sets[set_idx]
                if lru[-1] != block:
                    lru.remove(block)
                    lru.append(block)
            return None
        for set_idx, ordered, members in plan.groups:
            lru = sets[set_idx]
            if len(lru) == len(ordered):
                lru[:] = ordered
            else:
                lru[:] = [b for b in lru if b not in members] + ordered
        return None

    def bulk_insert_new(self, plan: "GroupPlan") -> int:
        """Aggregate effect of demand-inserting absent, distinct blocks.

        Equivalent to calling ``insert(block)`` once per block in order
        when no block is currently resident.  Returns the number of
        evicted lines that were unused prefetches (the only eviction
        consequence the scalar paths account).
        """
        sets = self._sets
        assoc = self.assoc
        pf_pending = self._pf_pending
        resident = self._resident
        evicted_unused = 0
        if not pf_pending:
            # No pending prefetch flags anywhere: the insert sequence is a
            # pure bounded queue -- the final set content is the last
            # ``assoc`` elements of (old LRU order + insertions) and no
            # eviction can be an unused prefetch.
            if plan.flat is not None:
                for set_idx, block in plan.flat:
                    lru = sets[set_idx]
                    if len(lru) >= assoc:
                        resident.discard(lru[0])
                        del lru[0]
                    lru.append(block)
                    resident.add(block)
                return 0
            for set_idx, ordered, _members in plan.groups:
                lru = sets[set_idx]
                overflow = len(lru) + len(ordered) - assoc
                if overflow > 0:
                    if overflow >= len(lru):
                        # The whole old content -- and the first inserted
                        # blocks, which never survive the sequence -- are
                        # evicted; only the tail of ``ordered`` remains.
                        resident.difference_update(lru)
                        lru[:] = ordered[overflow - len(lru):]
                        resident.update(lru)
                        continue
                    resident.difference_update(lru[:overflow])
                    del lru[:overflow]
                lru.extend(ordered)
                resident.update(ordered)
            return 0
        for set_idx, ordered, _members in plan.groups:
            lru = sets[set_idx]
            if len(lru) + len(ordered) <= assoc:
                # No evictions possible: appending in order is the whole
                # effect of the insert sequence.
                lru.extend(ordered)
                resident.update(ordered)
                continue
            for block in ordered:
                if len(lru) >= assoc:
                    victim = lru.pop(0)
                    resident.discard(victim)
                    if victim in pf_pending:
                        pf_pending.discard(victim)
                        evicted_unused += 1
                lru.append(block)
                resident.add(block)
        return evicted_unused

    def contains_all(self, blocks: Sequence[int]) -> bool:
        """True when every block is resident (no LRU side effects)."""
        return self._resident.issuperset(blocks)

    def contains_none(self, blocks: Sequence[int]) -> bool:
        """True when no block is resident (no LRU side effects)."""
        return self._resident.isdisjoint(blocks)

    def pf_disjoint(self, blocks: frozenset) -> bool:
        """True when no block carries a pending prefetch flag."""
        pf = self._pf_pending
        return not pf or pf.isdisjoint(blocks)

    def invalidate_unused_prefetches(self) -> int:
        """Invalidate every resident prefetched-but-unreferenced line.

        Used to model stream-prefetcher squash on divergence: lines brought
        in for a stream that turned out wrong are dead weight.  Returns the
        number of lines dropped.
        """
        dropped = 0
        for block in list(self._pf_pending):
            lru = self._sets[block & self._set_mask]
            if block in lru:
                lru.remove(block)
                self._resident.discard(block)
                dropped += 1
        self._pf_pending.clear()
        return dropped

    def clear_prefetch_flag(self, block: int) -> bool:
        """Mark a prefetched line as used (e.g. its copy in another level
        was demand-referenced).  Returns True if the flag was set."""
        if block in self._pf_pending:
            self._pf_pending.discard(block)
            return True
        return False

    def invalidate(self, block: int) -> bool:
        """Remove ``block`` if resident.  Returns True if it was resident."""
        lru = self._sets[block & self._set_mask]
        if block in lru:
            lru.remove(block)
            self._resident.discard(block)
            self._pf_pending.discard(block)
            return True
        return False

    def flush(self) -> int:
        """Invalidate every line.  Returns the number of lines dropped."""
        self.check_invariants()
        dropped = sum(map(len, self._sets))
        if dropped:
            # Clear in place (iterating only the non-empty sets via the
            # C-level filter) rather than reallocating num_sets lists:
            # large caches are mostly empty at flush time, and in-place
            # clearing keeps any outstanding aliases to the set lists
            # valid.
            for lru in filter(None, self._sets):
                del lru[:]
        self._pf_pending.clear()
        self._resident.clear()
        return dropped

    def check_invariants(self, deep: bool = False) -> None:
        """Contract check of the structural invariants.

        The cheap O(sets) pass (run on every :meth:`flush`, i.e. once per
        lukewarm invocation) bounds set occupancy and the prefetch-pending
        ledger; ``deep=True`` additionally scans every line for duplicate
        tags within a set and verifies that every pending-prefetch tag is
        actually resident.
        """
        if not contracts.enabled():
            return
        name = self.params.name
        # C-speed scan; the per-set message is only built on violation.
        lens = list(map(len, self._sets))
        occupancy = sum(lens)
        if lens and max(lens) > self.assoc:
            set_idx = next(i for i, n in enumerate(lens) if n > self.assoc)
            contracts.check(
                False,
                f"{name}: set {set_idx} holds {lens[set_idx]} lines but is "
                f"only {self.assoc}-way",
            )
        contracts.check(
            len(self._pf_pending) <= occupancy,
            f"{name}: {len(self._pf_pending)} pending prefetched lines "
            f"exceed the {occupancy} resident lines",
        )
        if deep:
            # Duplicate/misplaced-tag checks come first: a duplicate also
            # desyncs the residency index, and the root cause is the more
            # actionable diagnosis.
            for set_idx, lru in enumerate(self._sets):
                contracts.check(
                    len(set(lru)) == len(lru),
                    f"{name}: duplicate tag within set {set_idx}",
                )
                for block in lru:
                    contracts.check(
                        (block & self._set_mask) == set_idx,
                        f"{name}: block {block:#x} resident in set {set_idx} "
                        f"but maps to set {block & self._set_mask}",
                    )
        contracts.check(
            len(self._resident) == occupancy,
            f"{name}: residency index holds {len(self._resident)} tags "
            f"for {occupancy} resident lines",
        )
        if deep:
            actual: Set[int] = set()
            for lru in self._sets:
                actual.update(lru)
            contracts.check(
                actual == self._resident,
                f"{name}: residency index out of sync with the set lists",
            )
            contracts.check(
                self._pf_pending <= actual,
                f"{name}: prefetch-pending ledger references evicted lines",
            )

    # ------------------------------------------------------------------
    # Pollution primitives for interleaving experiments
    # ------------------------------------------------------------------

    def pollute(self, n_blocks: int) -> None:
        """Insert ``n_blocks`` distinct synthetic blocks (exact, O(n)).

        The synthetic tags are guaranteed never to collide with real blocks
        and are spread round-robin across sets, modeling another tenant's
        streaming footprint.
        """
        for _ in range(n_blocks):
            self._pollution_seq += 1
            fake = _POLLUTION_BIT | (self._pollution_seq * 0x9E3779B1 & 0xFFFFFFFF)
            fake = (fake & ~self._set_mask) | (self._pollution_seq & self._set_mask)
            self.insert(fake)

    def bulk_pollute(self, n_blocks: int, rng: Optional[np.random.Generator] = None) -> None:
        """Statistically equivalent pollution in O(sets).

        ``n_blocks`` random distinct insertions land on sets ~uniformly; we
        draw the per-set insertion count from Poisson(n/sets) and evict that
        many LRU lines per set, installing synthetic lines in their place
        (capped at the associativity: more insertions than ways just churn
        the synthetic lines themselves).
        """
        if n_blocks <= 0:
            return
        lam = n_blocks / self.num_sets
        if rng is None:
            rng = np.random.default_rng(0xC0FFEE ^ n_blocks)
        counts = rng.poisson(lam, self.num_sets)
        assoc = self.assoc
        for set_idx in range(self.num_sets):
            k = int(counts[set_idx])
            if k <= 0:
                continue
            # Inserting more than occupancy+assoc lines only churns the
            # synthetic lines themselves.
            lru = self._sets[set_idx]
            k = min(k, assoc + len(lru))
            for _ in range(k):
                if len(lru) >= assoc:
                    victim = lru.pop(0)
                    self._resident.discard(victim)
                    if victim in self._pf_pending:
                        self._pf_pending.discard(victim)
                self._pollution_seq += 1
                fake = _POLLUTION_BIT | (self._pollution_seq << 12) | set_idx
                lru.append(fake)
                self._resident.add(fake)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def occupancy(self) -> int:
        """Number of resident lines."""
        return sum(len(lru) for lru in self._sets)

    @property
    def pending_prefetches(self) -> int:
        """Resident prefetched lines not yet demand-referenced."""
        return len(self._pf_pending)

    def resident_blocks(self) -> Set[int]:
        """The set of resident block tags (synthetic pollution included)."""
        return set(self._resident)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SetAssocCache({self.params.name}, {self.params.size}B, "
            f"{self.assoc}-way, occupancy={self.occupancy})"
        )
