"""Set-associative cache model with LRU replacement.

The cache operates on *block numbers* (byte address >> 6).  It tracks which
resident lines were installed by a prefetcher and not yet referenced, so the
hierarchy can account prefetch hits (coverage) and unused prefetches
(overprediction) for Figs. 11 and 12.

Two pollution primitives support the interleaving experiments:

* :meth:`SetAssocCache.pollute` touches ``n`` distinct synthetic blocks
  through the normal insertion path (exact but O(n));
* :meth:`SetAssocCache.bulk_pollute` applies the statistically equivalent
  per-set eviction count directly (O(sets)), which makes the Fig. 1 IAT
  sweep tractable.  A property-based test checks the two agree in
  distribution.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

import numpy as np

from repro.lint import contracts
from repro.sim.params import CacheParams

#: Tag bit used to mark synthetic pollution lines so they can never collide
#: with real (48-bit virtual address) blocks.
_POLLUTION_BIT = 1 << 60


class SetAssocCache:
    """A set-associative, write-allocate cache with true-LRU replacement."""

    def __init__(self, params: CacheParams) -> None:
        self.params = params
        self.num_sets = params.num_sets
        self.assoc = params.assoc
        self._set_mask = self.num_sets - 1
        #: One LRU-ordered list of block tags per set; MRU at the end.
        self._sets: List[List[int]] = [[] for _ in range(self.num_sets)]
        #: Blocks installed by a prefetcher and not yet demand-referenced.
        self._pf_pending: Set[int] = set()
        self._pollution_seq = 0

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------

    def lookup(self, block: int) -> Tuple[bool, bool]:
        """Demand-look up ``block``.

        Returns ``(hit, was_prefetched)`` where ``was_prefetched`` is True
        when this is the first demand reference to a prefetched line.
        Updates LRU order on a hit; does *not* insert on a miss
        (use :meth:`insert`).
        """
        lru = self._sets[block & self._set_mask]
        if block in lru:
            if lru[-1] != block:
                lru.remove(block)
                lru.append(block)
            if block in self._pf_pending:
                self._pf_pending.discard(block)
                return True, True
            return True, False
        return False, False

    def contains(self, block: int) -> bool:
        """Return True if ``block`` is resident (no LRU side effects)."""
        return block in self._sets[block & self._set_mask]

    def insert(self, block: int, prefetch: bool = False) -> Tuple[Optional[int], bool]:
        """Install ``block`` as the MRU line of its set.

        Returns ``(evicted_block, evicted_unused_prefetch)``.  Inserting an
        already-resident block refreshes its LRU position (and its prefetch
        flag, if ``prefetch`` is False, is cleared: a demand insert of a
        prefetched line counts as its use).
        """
        lru = self._sets[block & self._set_mask]
        evicted: Optional[int] = None
        evicted_unused = False
        if block in lru:
            lru.remove(block)
            lru.append(block)
            if not prefetch:
                self._pf_pending.discard(block)
            return None, False
        if len(lru) >= self.assoc:
            evicted = lru.pop(0)
            if evicted in self._pf_pending:
                self._pf_pending.discard(evicted)
                evicted_unused = True
        lru.append(block)
        if prefetch:
            self._pf_pending.add(block)
        return evicted, evicted_unused

    def invalidate_unused_prefetches(self) -> int:
        """Invalidate every resident prefetched-but-unreferenced line.

        Used to model stream-prefetcher squash on divergence: lines brought
        in for a stream that turned out wrong are dead weight.  Returns the
        number of lines dropped.
        """
        dropped = 0
        for block in list(self._pf_pending):
            lru = self._sets[block & self._set_mask]
            if block in lru:
                lru.remove(block)
                dropped += 1
        self._pf_pending.clear()
        return dropped

    def clear_prefetch_flag(self, block: int) -> bool:
        """Mark a prefetched line as used (e.g. its copy in another level
        was demand-referenced).  Returns True if the flag was set."""
        if block in self._pf_pending:
            self._pf_pending.discard(block)
            return True
        return False

    def invalidate(self, block: int) -> bool:
        """Remove ``block`` if resident.  Returns True if it was resident."""
        lru = self._sets[block & self._set_mask]
        if block in lru:
            lru.remove(block)
            self._pf_pending.discard(block)
            return True
        return False

    def flush(self) -> int:
        """Invalidate every line.  Returns the number of lines dropped."""
        self.check_invariants()
        dropped = sum(len(lru) for lru in self._sets)
        self._sets = [[] for _ in range(self.num_sets)]
        self._pf_pending.clear()
        return dropped

    def check_invariants(self, deep: bool = False) -> None:
        """Contract check of the structural invariants.

        The cheap O(sets) pass (run on every :meth:`flush`, i.e. once per
        lukewarm invocation) bounds set occupancy and the prefetch-pending
        ledger; ``deep=True`` additionally scans every line for duplicate
        tags within a set and verifies that every pending-prefetch tag is
        actually resident.
        """
        if not contracts.enabled():
            return
        name = self.params.name
        occupancy = 0
        for set_idx, lru in enumerate(self._sets):
            occupancy += len(lru)
            contracts.check(
                len(lru) <= self.assoc,
                f"{name}: set {set_idx} holds {len(lru)} lines but is only "
                f"{self.assoc}-way",
            )
        contracts.check(
            len(self._pf_pending) <= occupancy,
            f"{name}: {len(self._pf_pending)} pending prefetched lines "
            f"exceed the {occupancy} resident lines",
        )
        if deep:
            for set_idx, lru in enumerate(self._sets):
                contracts.check(
                    len(set(lru)) == len(lru),
                    f"{name}: duplicate tag within set {set_idx}",
                )
                for block in lru:
                    contracts.check(
                        (block & self._set_mask) == set_idx,
                        f"{name}: block {block:#x} resident in set {set_idx} "
                        f"but maps to set {block & self._set_mask}",
                    )
            resident = self.resident_blocks()
            contracts.check(
                self._pf_pending <= resident,
                f"{name}: prefetch-pending ledger references evicted lines",
            )

    # ------------------------------------------------------------------
    # Pollution primitives for interleaving experiments
    # ------------------------------------------------------------------

    def pollute(self, n_blocks: int) -> None:
        """Insert ``n_blocks`` distinct synthetic blocks (exact, O(n)).

        The synthetic tags are guaranteed never to collide with real blocks
        and are spread round-robin across sets, modeling another tenant's
        streaming footprint.
        """
        for _ in range(n_blocks):
            self._pollution_seq += 1
            fake = _POLLUTION_BIT | (self._pollution_seq * 0x9E3779B1 & 0xFFFFFFFF)
            fake = (fake & ~self._set_mask) | (self._pollution_seq & self._set_mask)
            self.insert(fake)

    def bulk_pollute(self, n_blocks: int, rng: Optional[np.random.Generator] = None) -> None:
        """Statistically equivalent pollution in O(sets).

        ``n_blocks`` random distinct insertions land on sets ~uniformly; we
        draw the per-set insertion count from Poisson(n/sets) and evict that
        many LRU lines per set, installing synthetic lines in their place
        (capped at the associativity: more insertions than ways just churn
        the synthetic lines themselves).
        """
        if n_blocks <= 0:
            return
        lam = n_blocks / self.num_sets
        if rng is None:
            rng = np.random.default_rng(0xC0FFEE ^ n_blocks)
        counts = rng.poisson(lam, self.num_sets)
        assoc = self.assoc
        for set_idx in range(self.num_sets):
            k = int(counts[set_idx])
            if k <= 0:
                continue
            # Inserting more than occupancy+assoc lines only churns the
            # synthetic lines themselves.
            lru = self._sets[set_idx]
            k = min(k, assoc + len(lru))
            for _ in range(k):
                if len(lru) >= assoc:
                    victim = lru.pop(0)
                    if victim in self._pf_pending:
                        self._pf_pending.discard(victim)
                self._pollution_seq += 1
                fake = _POLLUTION_BIT | (self._pollution_seq << 12) | set_idx
                lru.append(fake)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def occupancy(self) -> int:
        """Number of resident lines."""
        return sum(len(lru) for lru in self._sets)

    @property
    def pending_prefetches(self) -> int:
        """Resident prefetched lines not yet demand-referenced."""
        return len(self._pf_pending)

    def resident_blocks(self) -> Set[int]:
        """The set of resident block tags (synthetic pollution included)."""
        resident: Set[int] = set()
        for lru in self._sets:
            resident.update(lru)
        return resident

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SetAssocCache({self.params.name}, {self.params.size}B, "
            f"{self.assoc}-way, occupancy={self.occupancy})"
        )
