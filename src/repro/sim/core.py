"""The analytic core timing model.

:class:`Simulator` executes an :class:`repro.workloads.trace.InvocationTrace`
against a :class:`repro.sim.hierarchy.MemoryHierarchy`, charging cycles to
Top-Down categories (DESIGN.md Sec. 3):

* ``retiring``       — instructions / issue width;
* ``fetch_latency``  — charged instruction-miss latencies, I-TLB walks and
  BTB-cold fetch bubbles (the in-order front-end cannot hide these);
* ``fetch_bandwidth``— taken-branch fetch-group fragmentation;
* ``bad_speculation``— direction mispredicts x pipeline refill penalty;
* ``backend_bound``  — charged data-miss latencies (partially hidden by the
  out-of-order back-end) plus D-TLB walks.

The model is trace-driven and deterministic.  It is *not* a cycle-accurate
out-of-order pipeline; overlap between misses and execution is captured by
the per-class stall factors in :class:`repro.sim.params.CoreParams`, which
are calibrated against the paper's reported aggregates (see DESIGN.md
Sec. 5 and EXPERIMENTS.md).

Two execution backends share this model (DESIGN.md Sec. 12):

* ``"scalar"`` -- the event-at-a-time reference interpreter in
  :meth:`Simulator._run_scalar`;
* ``"columnar"`` -- the vectorized interpreter in :mod:`repro.sim.batch`,
  which consumes the trace's columnar IR and is required to reproduce the
  scalar results *bit for bit* (enforced by the differential battery).

Prefer the :func:`repro.sim.simulate` facade over constructing a
:class:`Simulator` directly.  The historical ``LukewarmCore`` name
survives as a deprecated alias pinned to the scalar backend.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import ConfigurationError
from repro.lint import contracts
from repro.sim import batch
from repro.sim.branch import BTB, SiteBranchModel
from repro.sim.hierarchy import MemoryHierarchy
from repro.sim.params import MachineParams
from repro.sim.stats import HierarchyStats
from repro.sim.topdown import TopDownBreakdown
from repro.workloads.trace import (
    BRANCH,
    IFETCH,
    LOAD,
    LOOP,
    STORE,
    InvocationTrace,
)


@dataclass
class InvocationResult:
    """Everything measured while executing one invocation."""

    instructions: int
    topdown: TopDownBreakdown
    stats: HierarchyStats
    #: Demand instruction fetches served per level.
    fetch_sources: Dict[str, int] = field(default_factory=dict)
    mispredicts: float = 0.0
    btb_bubbles: int = 0

    @property
    def cycles(self) -> float:
        return self.topdown.total_cycles

    @property
    def cpi(self) -> float:
        return self.topdown.cpi(self.instructions)

    def mpki(self, level: str, kind: str = "all") -> float:
        return self.stats.levels()[level].mpki(self.instructions, kind)


#: Valid values of ``Simulator(backend=...)`` / ``RunConfig.backend``.
BACKENDS = ("columnar", "scalar")


class Simulator:
    """Single-core analytic model with pluggable prefetchers.

    ``backend`` selects the execution strategy: ``"columnar"`` (default)
    runs the vectorized interpreter over the trace's columnar IR,
    ``"scalar"`` runs the event-at-a-time reference.  Both produce
    byte-identical results and state by contract.
    """

    def __init__(self, machine: MachineParams,
                 hierarchy: Optional[MemoryHierarchy] = None,
                 backend: str = "columnar") -> None:
        if backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown simulation backend {backend!r}; "
                f"expected one of {', '.join(BACKENDS)}"
            )
        self.backend = backend
        self.machine = machine
        self.hierarchy = hierarchy if hierarchy is not None else MemoryHierarchy(machine)
        self.btb = BTB(machine.core)
        self.branches = SiteBranchModel(self.btb)
        self._width = machine.core.issue_width
        self._taken_penalty = machine.core.taken_branch_penalty
        self._mispredict_penalty = machine.core.mispredict_penalty
        self._btb_penalty = machine.core.btb_miss_penalty
        self._f_onchip = machine.core.inst_stall_onchip
        self._l2_lat = machine.l2.latency

    # ------------------------------------------------------------------

    def flush_microarch_state(self) -> None:
        """Obliterate all on-chip state: the lukewarm baseline (Sec. 5.2)."""
        self.hierarchy.flush_caches()
        self.branches.flush()

    def run(self, trace: InvocationTrace, start_cycle: float = 0.0) -> InvocationResult:
        """Execute one invocation; returns its measurements.

        ``start_cycle`` offsets simulated time (used when a replayed
        prefetch schedule was computed relative to the invocation start).
        Dispatches to the configured backend.
        """
        if self.backend == "columnar":
            return batch.run_columnar(self, trace, start_cycle)
        return self._run_scalar(trace, start_cycle)

    def _run_scalar(self, trace: InvocationTrace,
                    start_cycle: float = 0.0) -> InvocationResult:
        """The event-at-a-time reference interpreter.

        This loop *defines* the model's semantics; the columnar backend
        must reproduce it bit for bit and falls back to the same hierarchy
        methods wherever a bulk precondition does not hold.
        """
        hier = self.hierarchy
        td = TopDownBreakdown()
        access_instr = hier.access_instr
        access_data = hier.access_data
        width = self._width
        taken_penalty = self._taken_penalty
        sources: Dict[str, int] = {}
        instructions = 0
        mispredicts = 0.0
        bubbles = 0
        cycle = start_cycle

        stats_before = hier.stats.snapshot()
        kinds = trace.kinds
        addrs = trace.addrs
        args = trace.args
        args2 = trace.args2
        loops = trace.loops

        for i in range(len(kinds)):
            kind = kinds[i]
            if kind == IFETCH:
                addr = int(addrs[i])
                insts = int(args[i])
                stall, level = access_instr(addr, cycle)
                sources[level] = sources.get(level, 0) + 1
                retire = insts / width
                fb = int(args2[i]) * taken_penalty
                td.fetch_latency += stall
                td.retiring += retire
                td.fetch_bandwidth += fb
                instructions += insts
                cycle += stall + retire + fb
            elif kind == LOAD or kind == STORE:
                stall, _level = access_data(int(addrs[i]), kind == STORE, cycle)
                td.backend_bound += stall
                cycle += stall
            elif kind == BRANCH:
                execs = int(args[i])
                p = int(args2[i]) / 255.0
                mis, bub = self.branches.execute_site(int(addrs[i]), execs, p)
                mispredicts += mis
                bubbles += bub
                spec = mis * self._mispredict_penalty
                fetch = bub * self._btb_penalty
                td.bad_speculation += spec
                td.fetch_latency += fetch
                cycle += spec + fetch
            elif kind == LOOP:
                spec = loops[int(args[i])]
                cycle = self._run_loop(spec, td, sources, cycle)
                instructions += spec.total_insts
                # Loop-exit mispredict.
                mispredicts += 1
                td.bad_speculation += self._mispredict_penalty
                cycle += self._mispredict_penalty
            else:  # pragma: no cover - trace construction prevents this
                raise ValueError(f"unknown trace event kind {kind}")

        result = InvocationResult(
            instructions=instructions,
            topdown=td,
            stats=hier.stats.delta(stats_before),
            fetch_sources=sources,
            mispredicts=mispredicts,
            btb_bubbles=bubbles,
        )
        # Runtime contract: every invocation leaves balanced counters and a
        # Top-Down breakdown whose components sum to the total (repro.lint).
        contracts.check_invocation(result)
        return result

    def _run_loop(self, spec, td: TopDownBreakdown,
                  sources: Dict[str, int], cycle: float) -> float:
        """Execute a tight loop: first pass through the hierarchy, the
        remaining passes analytically (see trace-format docs)."""
        hier = self.hierarchy
        width = self._width
        blocks = spec.blocks
        n_blocks = len(blocks)
        insts_per_block = max(1.0, spec.insts_per_iteration / n_blocks)

        for addr in blocks:
            stall, level = hier.access_instr(addr, cycle)
            sources[level] = sources.get(level, 0) + 1
            step = stall + insts_per_block / width
            td.fetch_latency += stall
            td.retiring += insts_per_block / width
            cycle += step

        remaining = spec.iterations - 1
        if remaining > 0:
            retire = remaining * spec.insts_per_iteration / width
            fb = remaining * spec.branches_per_iteration * self._taken_penalty
            td.retiring += retire
            td.fetch_bandwidth += fb
            cycle += retire + fb
            if spec.body_bytes > hier.machine.l1i.size:
                # The body does not fit in the L1-I: every pass re-fetches
                # from the L2 (where the first pass installed it).
                steady = remaining * n_blocks * self._l2_lat * self._f_onchip
                td.fetch_latency += steady
                cycle += steady
        return cycle


class LukewarmCore(Simulator):
    """Deprecated alias of :class:`Simulator`, pinned to the scalar
    backend (the behaviour every pre-redesign caller observed).

    Use :func:`repro.sim.simulate` -- or :class:`Simulator` when you need
    to hold warm state across invocations -- instead.
    """

    def __init__(self, machine: MachineParams,
                 hierarchy: Optional[MemoryHierarchy] = None) -> None:
        warnings.warn(
            "LukewarmCore is deprecated; use repro.sim.simulate() or "
            "repro.sim.Simulator(machine, backend=...) instead",
            DeprecationWarning, stacklevel=2)
        super().__init__(machine, hierarchy, backend="scalar")
