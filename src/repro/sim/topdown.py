"""Top-Down cycle accounting (Yasin, ISPASS 2014; paper Sec. 2.3).

The analytic core charges every cycle to exactly one of the four top-level
Top-Down categories; the front-end category is further split into *fetch
latency* and *fetch bandwidth* as in Figs. 3 and 4.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class TopDownBreakdown:
    """Cycles per Top-Down category for one (or more) invocations."""

    retiring: float = 0.0
    fetch_latency: float = 0.0
    fetch_bandwidth: float = 0.0
    bad_speculation: float = 0.0
    backend_bound: float = 0.0

    @property
    def frontend_bound(self) -> float:
        return self.fetch_latency + self.fetch_bandwidth

    @property
    def total_cycles(self) -> float:
        return (self.retiring + self.fetch_latency + self.fetch_bandwidth
                + self.bad_speculation + self.backend_bound)

    @property
    def stall_cycles(self) -> float:
        """All non-retiring cycles."""
        return self.total_cycles - self.retiring

    def cpi(self, instructions: int) -> float:
        if instructions <= 0:
            return 0.0
        return self.total_cycles / instructions

    def fraction(self, category: str) -> float:
        total = self.total_cycles
        if total == 0:
            return 0.0
        return getattr(self, category) / total

    def cpi_stack(self, instructions: int) -> "dict[str, float]":
        """Per-category CPI contributions (the bars of Fig. 2)."""
        if instructions <= 0:
            return {f.name: 0.0 for f in fields(self)}
        return {f.name: getattr(self, f.name) / instructions for f in fields(self)}

    def __add__(self, other: "TopDownBreakdown") -> "TopDownBreakdown":
        return TopDownBreakdown(
            retiring=self.retiring + other.retiring,
            fetch_latency=self.fetch_latency + other.fetch_latency,
            fetch_bandwidth=self.fetch_bandwidth + other.fetch_bandwidth,
            bad_speculation=self.bad_speculation + other.bad_speculation,
            backend_bound=self.backend_bound + other.backend_bound,
        )

    def __sub__(self, other: "TopDownBreakdown") -> "TopDownBreakdown":
        return TopDownBreakdown(
            retiring=self.retiring - other.retiring,
            fetch_latency=self.fetch_latency - other.fetch_latency,
            fetch_bandwidth=self.fetch_bandwidth - other.fetch_bandwidth,
            bad_speculation=self.bad_speculation - other.bad_speculation,
            backend_bound=self.backend_bound - other.backend_bound,
        )

    def scaled(self, factor: float) -> "TopDownBreakdown":
        return TopDownBreakdown(
            retiring=self.retiring * factor,
            fetch_latency=self.fetch_latency * factor,
            fetch_bandwidth=self.fetch_bandwidth * factor,
            bad_speculation=self.bad_speculation * factor,
            backend_bound=self.backend_bound * factor,
        )


def mean_breakdown(breakdowns: "list[TopDownBreakdown]") -> TopDownBreakdown:
    """Arithmetic mean of several breakdowns."""
    if not breakdowns:
        return TopDownBreakdown()
    acc = TopDownBreakdown()
    for bd in breakdowns:
        acc = acc + bd
    return acc.scaled(1.0 / len(breakdowns))
