"""TLB and page-walk cost model.

TLBs operate on *page numbers* (byte address >> 12).  A miss costs a fixed
page-walk latency; we do not model the page-walk cache hierarchy in detail
(the paper's fetch-latency story is dominated by instruction cache misses,
with I-TLB warming a secondary effect that Jukebox's replay also provides,
Sec. 3.3).
"""

from __future__ import annotations

from typing import List

from repro.sim.params import TLBParams


class TLB:
    """A small set-associative TLB with LRU replacement."""

    def __init__(self, params: TLBParams) -> None:
        self.params = params
        self.num_sets = params.num_sets
        self.assoc = params.assoc
        self._set_mask = self.num_sets - 1
        self._sets: List[List[int]] = [[] for _ in range(self.num_sets)]

    def access(self, page: int) -> bool:
        """Translate ``page``.  Returns True on a hit; fills on a miss."""
        lru = self._sets[page & self._set_mask]
        if page in lru:
            if lru[-1] != page:
                lru.remove(page)
                lru.append(page)
            return True
        if len(lru) >= self.assoc:
            lru.pop(0)
        lru.append(page)
        return False

    def contains(self, page: int) -> bool:
        """Return True if ``page`` is resident, without LRU side effects."""
        return page in self._sets[page & self._set_mask]

    def warm(self, page: int) -> bool:
        """Pre-populate a translation (Jukebox replay warms the I-TLB).

        Returns True if the translation was already resident.
        """
        lru = self._sets[page & self._set_mask]
        if page in lru:
            return True
        if len(lru) >= self.assoc:
            lru.pop(0)
        lru.append(page)
        return False

    def flush(self) -> None:
        """Invalidate all translations (in place, so aliases stay valid)."""
        for lru in filter(None, self._sets):
            del lru[:]

    @property
    def occupancy(self) -> int:
        return sum(len(lru) for lru in self._sets)
