"""Per-function calibrated parameters.

A :class:`FunctionProfile` captures everything the trace generator needs to
produce invocations that are statistically equivalent to one of the paper's
20 containerized functions (Table 2): instruction footprint (Fig. 6a),
cross-invocation commonality (Fig. 6b), spatial density (drives Jukebox
metadata size, Fig. 8), loop-heaviness (drives the perfect-I-cache
opportunity spread of Fig. 10) and data working set.

Language defaults encode the paper's observation that "the language in
which the function is written is the single biggest determinant of a given
function's runtime and Jukebox's efficacy" (footnote 4): Go binaries are
compact and dense; Python and NodeJS runtimes have larger, more scattered
instruction footprints whose Jukebox metadata exceeds the 16KB budget.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from repro.errors import ConfigurationError
from repro.units import KB, PAGE_SIZE

LANG_PYTHON = "python"
LANG_NODEJS = "nodejs"
LANG_GO = "go"
LANGUAGES = (LANG_PYTHON, LANG_NODEJS, LANG_GO)

#: Suffix convention of the paper's abbreviations (Table 2 legend).
LANG_SUFFIX = {LANG_PYTHON: "P", LANG_NODEJS: "N", LANG_GO: "G"}


@dataclass(frozen=True)
class FunctionProfile:
    """Calibrated generator parameters for one serverless function."""

    name: str
    abbrev: str
    language: str
    application: str
    #: Mean per-invocation instruction footprint (Fig. 6a target).
    footprint_kb: int
    #: Dynamic instructions retired per invocation.
    instructions: int
    #: Data working set (resident blocks touched per invocation).
    data_ws_kb: int
    #: Spatial density of code within segments (Fig. 8 driver).
    density: float
    #: Fraction of footprint in per-invocation-optional segments and the
    #: probability each optional segment executes (Fig. 6b Jaccard driver).
    optional_fraction: float = 0.18
    optional_include_prob: float = 0.6
    #: Fraction of instructions spent in tight loops (low => fetch-latency
    #: sensitive, high perfect-I$ opportunity; high => compute-bound).
    loopiness: float = 0.35
    #: Fraction of footprint in hot (revisited) segments.
    hot_fraction: float = 0.35
    #: Number of request-processing phases per invocation; each phase walks
    #: a temporally clustered subset of segments (drives L1-I locality).
    phases: int = 6
    #: Mean instructions retired per block visit in straight-line code.
    insts_per_block: int = 12
    #: Conditional-branch sites per invocation and their mean bias.
    branch_sites: int = 1200
    branch_bias: float = 0.85

    def __post_init__(self) -> None:
        if self.language not in LANGUAGES:
            raise ConfigurationError(f"unknown language {self.language!r}")
        if self.footprint_kb < 64:
            raise ConfigurationError(
                f"{self.name}: footprint {self.footprint_kb}KB unrealistically small"
            )
        if self.instructions < 10_000:
            raise ConfigurationError(f"{self.name}: too few instructions")
        if not 0.0 <= self.loopiness <= 0.95:
            raise ConfigurationError(f"{self.name}: loopiness out of range")

    @property
    def footprint_bytes(self) -> int:
        return self.footprint_kb * KB

    @property
    def data_ws_bytes(self) -> int:
        return self.data_ws_kb * KB

    @property
    def code_pages(self) -> int:
        """4KB pages holding the instruction footprint (snapshot-restore
        granularity; :mod:`repro.coldstart.pages` builds on this)."""
        return -(-self.footprint_bytes // PAGE_SIZE)

    @property
    def data_pages(self) -> int:
        """4KB pages holding the per-invocation data working set."""
        return -(-self.data_ws_bytes // PAGE_SIZE)

    def scaled(self, instruction_scale: float) -> "FunctionProfile":
        """Return a profile with instruction volume scaled (used by fast
        test/bench configurations; footprint is preserved so miss behaviour
        per invocation is unchanged, only reuse depth shrinks)."""
        if instruction_scale <= 0:
            raise ConfigurationError("scale must be positive")
        return replace(
            self,
            instructions=max(20_000, int(self.instructions * instruction_scale)),
            phases=max(2, int(round(self.phases * instruction_scale ** 0.5))),
            branch_sites=max(100, int(self.branch_sites * instruction_scale ** 0.5)),
        )


#: Language-level defaults used by the suite definitions.
LANGUAGE_DEFAULTS: Dict[str, Dict[str, float]] = {
    LANG_PYTHON: dict(density=0.52, insts_per_block=11, optional_fraction=0.16,
                      optional_include_prob=0.62),
    LANG_NODEJS: dict(density=0.48, insts_per_block=11, optional_fraction=0.20,
                      optional_include_prob=0.58),
    LANG_GO: dict(density=0.82, insts_per_block=13, optional_fraction=0.14,
                  optional_include_prob=0.65),
}
