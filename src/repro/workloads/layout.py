"""Static code layout of a function instance's address space.

Each function instance runs inside its own container with a language
runtime, shared libraries and user code mapped into a 48-bit virtual
address space.  The layout determines the *spatial* structure Jukebox's
region encoding exploits: compiled Go binaries are dense (most cache lines
within a touched 1KB region are used), while interpreter/JIT runtimes
scatter their hot code across many sparsely-used regions.

A layout is a list of :class:`CodeSegment` objects.  Segments are the unit
of control-flow in the trace generator: an invocation is a structured walk
over segments (see :mod:`repro.workloads.function`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.units import KB, LINE_SIZE

#: Base virtual addresses for the three mapping areas.  Real containers map
#: the runtime, shared libraries and user code at distinct areas of the
#: address space; the exact values only need to be distinct and 48-bit.
RUNTIME_BASE = 0x5555_0000_0000
LIBRARY_BASE = 0x7F10_0000_0000
USER_BASE = 0x0000_4000_0000

ROLE_RUNTIME = "runtime"
ROLE_LIBRARY = "library"
ROLE_USER = "user"
ROLES = (ROLE_RUNTIME, ROLE_LIBRARY, ROLE_USER)


@dataclass(frozen=True)
class CodeSegment:
    """A logical unit of code (one function body / JIT region / stub).

    ``blocks`` are the cache-line addresses the segment actually executes,
    sorted ascending; they may contain holes when the segment's code is
    sparse within its span.
    """

    name: str
    role: str
    blocks: Tuple[int, ...]
    #: Always executed (core path) or only on some invocations (optional
    #: path) -- optional segments create the <1.0 Jaccard commonality of
    #: Fig. 6b.
    optional: bool = False
    #: Hot segments are revisited many times within one invocation.
    hot: bool = False

    def __post_init__(self) -> None:
        if not self.blocks:
            raise ConfigurationError(f"segment {self.name} has no blocks")
        if self.role not in ROLES:
            raise ConfigurationError(f"segment {self.name}: bad role {self.role!r}")

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    @property
    def size_bytes(self) -> int:
        return self.n_blocks * LINE_SIZE

    @property
    def span_bytes(self) -> int:
        return self.blocks[-1] - self.blocks[0] + LINE_SIZE


@dataclass(frozen=True)
class CodeLayout:
    """The full code layout of one function instance."""

    segments: Tuple[CodeSegment, ...]

    @property
    def total_blocks(self) -> int:
        return sum(seg.n_blocks for seg in self.segments)

    @property
    def total_bytes(self) -> int:
        return self.total_blocks * LINE_SIZE

    def by_role(self, role: str) -> List[CodeSegment]:
        return [seg for seg in self.segments if seg.role == role]

    def mandatory(self) -> List[CodeSegment]:
        return [seg for seg in self.segments if not seg.optional]

    def optional(self) -> List[CodeSegment]:
        return [seg for seg in self.segments if seg.optional]

    def all_blocks(self) -> "set[int]":
        blocks: "set[int]" = set()
        for seg in self.segments:
            blocks.update(seg.blocks)
        return blocks


def _segment_blocks(base: int, n_blocks: int, density: float,
                    rng: np.random.Generator) -> Tuple[int, ...]:
    """Pick ``n_blocks`` line addresses starting at ``base`` with the given
    spatial density (used lines / spanned lines)."""
    span_lines = max(n_blocks, int(round(n_blocks / max(density, 0.05))))
    if span_lines == n_blocks:
        offsets = np.arange(n_blocks)
    else:
        offsets = np.sort(rng.choice(span_lines, size=n_blocks, replace=False))
        offsets[0] = 0  # anchor the segment at its base
    return tuple(int(base + off * LINE_SIZE) for off in offsets)


def build_layout(
    footprint_bytes: int,
    density: float,
    optional_fraction: float,
    hot_fraction: float,
    seed: int,
    mean_segment_blocks: int = 14,
    runtime_fraction: float = 0.45,
    library_fraction: float = 0.30,
) -> CodeLayout:
    """Generate a layout with the requested aggregate properties.

    Parameters
    ----------
    footprint_bytes:
        Total unique instruction bytes across all segments (the per-
        invocation footprint of Fig. 6a is this minus skipped optionals).
    density:
        Spatial density of code within each segment's span (Go ~0.8+,
        Python/NodeJS ~0.45-0.6).
    optional_fraction:
        Fraction of footprint in per-invocation-optional segments.
    hot_fraction:
        Fraction of footprint in hot (revisited) segments.
    """
    if footprint_bytes < 16 * KB:
        raise ConfigurationError(f"footprint too small: {footprint_bytes}")
    if not 0.0 < density <= 1.0:
        raise ConfigurationError(f"density out of range: {density}")
    if not 0.0 <= optional_fraction < 1.0:
        raise ConfigurationError(f"optional fraction out of range: {optional_fraction}")

    rng = np.random.default_rng(seed)
    total_blocks = footprint_bytes // LINE_SIZE
    role_budget = {
        ROLE_RUNTIME: int(total_blocks * runtime_fraction),
        ROLE_LIBRARY: int(total_blocks * library_fraction),
    }
    role_budget[ROLE_USER] = total_blocks - sum(role_budget.values())
    role_base = {
        ROLE_RUNTIME: RUNTIME_BASE,
        ROLE_LIBRARY: LIBRARY_BASE,
        ROLE_USER: USER_BASE,
    }

    segments: List[CodeSegment] = []
    seg_index = 0
    for role in ROLES:
        budget = role_budget[role]
        cursor = role_base[role] + int(rng.integers(0, 64)) * LINE_SIZE
        while budget > 0:
            n_blocks = int(rng.geometric(1.0 / mean_segment_blocks))
            n_blocks = max(2, min(n_blocks, 96, budget))
            blocks = _segment_blocks(cursor, n_blocks, density, rng)
            # Gap to the next segment: small for dense binaries (code is
            # contiguous), larger for interpreters/JITs.
            span = blocks[-1] - blocks[0] + LINE_SIZE
            gap_lines = int(rng.geometric(density)) * 4
            cursor = blocks[-1] + LINE_SIZE + gap_lines * LINE_SIZE
            segments.append(
                CodeSegment(
                    name=f"{role}_{seg_index}",
                    role=role,
                    blocks=blocks,
                    optional=bool(rng.random() < optional_fraction),
                    hot=bool(rng.random() < hot_fraction),
                )
            )
            seg_index += 1
            budget -= n_blocks

    # Ensure at least one mandatory hot segment per role so every invocation
    # has a spine to walk.
    for role in ROLES:
        role_segs = [s for s in segments if s.role == role]
        if not any((not s.optional) and s.hot for s in role_segs):
            anchor = role_segs[0]
            idx = segments.index(anchor)
            segments[idx] = CodeSegment(
                name=anchor.name, role=anchor.role, blocks=anchor.blocks,
                optional=False, hot=True,
            )
    return CodeLayout(segments=tuple(segments))
