"""Serverless function workload models (the containerized-function
substrate, Table 2)."""

from repro.workloads.function import FunctionModel
from repro.workloads.layout import CodeLayout, CodeSegment, build_layout
from repro.workloads.profiles import (
    FunctionProfile,
    LANG_GO,
    LANG_NODEJS,
    LANG_PYTHON,
    LANGUAGES,
)
from repro.workloads.suite import (
    BY_ABBREV,
    REPRESENTATIVES,
    SUITE,
    build_suite,
    get_profile,
    suite_subset,
)
from repro.workloads.trace import (
    InvocationTrace,
    LoopSpec,
    TraceBuilder,
)

__all__ = [
    "BY_ABBREV",
    "CodeLayout",
    "CodeSegment",
    "FunctionModel",
    "FunctionProfile",
    "InvocationTrace",
    "LANG_GO",
    "LANG_NODEJS",
    "LANG_PYTHON",
    "LANGUAGES",
    "LoopSpec",
    "REPRESENTATIVES",
    "SUITE",
    "TraceBuilder",
    "build_layout",
    "build_suite",
    "get_profile",
    "suite_subset",
]
