"""Per-invocation trace generation for one function instance.

A :class:`FunctionModel` owns a static :class:`~repro.workloads.layout.CodeLayout`
and generates an :class:`~repro.workloads.trace.InvocationTrace` for each
invocation index.  Generation is fully deterministic given
``(function seed, invocation index)``.

The structure of one invocation mirrors how a warm gRPC-served function
processes a request (Sec. 4.3):

1. the *dispatch spine*: every executed segment is walked in a stable
   order, partitioned into temporally clustered phases (gRPC decode ->
   runtime dispatch -> handler -> libraries -> response encode);
2. segments are revisited in consecutive bursts (call-site locality) which
   gives the L1-I its hit rate in warm executions;
3. hot segments (interpreter loop, serializers) recur in every phase;
4. loop hosts execute tight loops that provide the bulk of dynamic
   instructions for compute-heavy functions (AES, Fib);
5. optional segments execute probabilistically per invocation, producing
   the cross-invocation Jaccard commonality of Fig. 6b;
6. data accesses walk a per-phase slice of the data working set.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.units import LINE_SIZE
from repro.workloads.layout import CodeLayout, CodeSegment, build_layout
from repro.workloads.profiles import FunctionProfile
from repro.workloads.trace import InvocationTrace, LoopSpec, TraceBuilder

#: Base of the per-instance data arena.
DATA_BASE = 0x0000_2000_0000
#: Max blocks in a tight-loop body (tuned: bodies fit the L1-I).
MAX_LOOP_BODY_BLOCKS = 12


@dataclass(frozen=True)
class _LoopHost:
    segment: CodeSegment
    body: Sequence[int]
    site_pc: int


def _stable_seed(*parts: object) -> int:
    """A process-independent seed (``hash()`` of strings is randomized per
    interpreter run, which would make layouts irreproducible)."""
    return zlib.crc32("|".join(str(p) for p in parts).encode("utf-8"))


class FunctionModel:
    """Deterministic trace generator for one warm function instance."""

    def __init__(self, profile: FunctionProfile, seed: int = 0) -> None:
        self.profile = profile
        self.seed = seed
        layout_seed = _stable_seed(profile.abbrev, seed, "layout") % (2 ** 31)
        # Build the layout slightly larger than the per-invocation target
        # footprint: skipped optional segments bring the executed footprint
        # back down to the profile's Fig. 6a value.
        skipped = profile.optional_fraction * (1.0 - profile.optional_include_prob)
        layout_bytes = int(profile.footprint_bytes / max(0.5, 1.0 - skipped))
        self.layout: CodeLayout = build_layout(
            footprint_bytes=layout_bytes,
            density=profile.density,
            optional_fraction=profile.optional_fraction,
            hot_fraction=profile.hot_fraction,
            seed=layout_seed,
        )
        rng = np.random.default_rng(layout_seed + 1)
        self._spine = self._build_spine(rng)
        self._hot = [seg for seg in self._spine if seg.hot and not seg.optional]
        self._loop_hosts = self._pick_loop_hosts(rng)
        self._branch_pcs = self._assign_branch_sites(rng)
        self._data_blocks = self._build_data_arena()
        # Per-segment taken-probability of its representative branch sites;
        # stable across invocations so warm predictors can train.
        self._site_bias = {
            pc: float(np.clip(rng.normal(profile.branch_bias, 0.05), 0.55, 0.98))
            for pc in self._branch_pcs
        }

    # ------------------------------------------------------------------
    # Static structure
    # ------------------------------------------------------------------

    def _build_spine(self, rng: np.random.Generator) -> List[CodeSegment]:
        """Order segments as executed: runtime and library code interleaves
        with user code rather than running role-by-role."""
        segments = list(self.layout.segments)
        order = rng.permutation(len(segments))
        return [segments[i] for i in order]

    def _pick_loop_hosts(self, rng: np.random.Generator) -> List[_LoopHost]:
        profile = self.profile
        if profile.loopiness <= 0.0:
            return []
        n_loops = max(3, int(round(6 + profile.loopiness * 24)))
        candidates = [seg for seg in self._spine
                      if not seg.optional and seg.n_blocks >= 4]
        if not candidates:
            candidates = [seg for seg in self._spine if seg.n_blocks >= 2]
        picks = rng.choice(len(candidates), size=min(n_loops, len(candidates)),
                           replace=False)
        hosts = []
        for idx in picks:
            seg = candidates[int(idx)]
            body_len = min(MAX_LOOP_BODY_BLOCKS, seg.n_blocks)
            start = int(rng.integers(0, seg.n_blocks - body_len + 1))
            body = seg.blocks[start:start + body_len]
            hosts.append(_LoopHost(segment=seg, body=body, site_pc=body[0] + 4))
        return hosts

    def _assign_branch_sites(self, rng: np.random.Generator) -> List[int]:
        pcs: List[int] = []
        per_seg = max(1, self.profile.branch_sites // max(1, len(self._spine)))
        for seg in self._spine:
            n = min(per_seg, seg.n_blocks)
            offsets = rng.choice(seg.n_blocks, size=n, replace=False)
            pcs.extend(int(seg.blocks[int(o)]) + 16 for o in offsets)
        return pcs

    def _build_data_arena(self) -> np.ndarray:
        n_blocks = max(64, self.profile.data_ws_bytes // LINE_SIZE)
        base = DATA_BASE + (_stable_seed(self.profile.abbrev, self.seed,
                                         "data") % 4096) * 0x100000
        return base + np.arange(n_blocks, dtype=np.int64) * LINE_SIZE

    # ------------------------------------------------------------------
    # Trace generation
    # ------------------------------------------------------------------

    def invocation_trace(self, index: int) -> InvocationTrace:
        """Generate the trace of invocation number ``index``."""
        profile = self.profile
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=(self.seed, 104729, index))
        )
        builder = TraceBuilder()

        executed = [seg for seg in self._spine
                    if not seg.optional or rng.random() < profile.optional_include_prob]
        phases = self._partition_phases(executed, profile.phases)

        # Instruction budgets.
        loop_budget = int(profile.instructions * profile.loopiness)
        walk_budget = profile.instructions - loop_budget

        # Visits per segment so the walk budget is met: one pass costs
        # sum(blocks) * insts_per_block; hot segments recur in every phase.
        hot_scale = 1.6  # hot segments are revisited more (see _sample_visits)
        base_cost = sum(
            seg.n_blocks * (hot_scale if seg.hot else 1.0) for seg in executed
        )
        hot_cost = sum(seg.n_blocks * hot_scale for seg in self._hot)
        pass_cost = (base_cost + hot_cost * max(0, len(phases) - 1)) \
            * profile.insts_per_block
        mean_visits = max(1.0, walk_budget / max(1.0, pass_cost))

        loops = self._schedule_loops(loop_budget, rng)
        loops_by_segment = {}
        for host, spec in loops:
            loops_by_segment.setdefault(host.segment.name, []).append(spec)

        data_cursor = 0
        data_blocks = self._data_blocks
        n_data = len(data_blocks)
        # Hot data (stack / connection state) reused across phases.
        hot_data = data_blocks[: max(8, n_data // 16)]

        for phase_idx, phase_segments in enumerate(phases):
            segs = list(phase_segments)
            if phase_idx > 0:
                segs.extend(self._hot)
            for seg in segs:
                visits = self._sample_visits(rng, mean_visits, seg.hot)
                self._walk_segment(builder, seg, visits, rng)
                for spec in loops_by_segment.pop(seg.name, ()):
                    builder.loop(spec)
                self._emit_branch_burst(builder, seg, visits, rng)
                data_cursor = self._emit_data_burst(
                    builder, rng, data_blocks, hot_data, data_cursor,
                    n_events=max(1, int(seg.n_blocks * visits * 0.30)),
                )
        # Loops whose host segment was optional and skipped still execute
        # from their (mandatory) call sites.
        for specs in loops_by_segment.values():
            for spec in specs:
                builder.loop(spec)
        return builder.build()

    # -- helpers -------------------------------------------------------

    @staticmethod
    def _partition_phases(segments: List[CodeSegment],
                          n_phases: int) -> List[List[CodeSegment]]:
        n_phases = max(1, min(n_phases, len(segments)))
        size = -(-len(segments) // n_phases)
        return [segments[i:i + size] for i in range(0, len(segments), size)]

    @staticmethod
    def _sample_visits(rng: np.random.Generator, mean_visits: float,
                       hot: bool) -> int:
        scale = 1.6 if hot else 1.0
        lam = max(0.2, mean_visits * scale - 1.0)
        return 1 + int(rng.poisson(lam))

    def _walk_segment(self, builder: TraceBuilder, seg: CodeSegment,
                      visits: int, rng: np.random.Generator) -> None:
        """Walk a segment ``visits`` times back-to-back (call-site locality:
        repeated walks hit the L1-I)."""
        ipb = self.profile.insts_per_block
        for _ in range(visits):
            for j, addr in enumerate(seg.blocks):
                insts = ipb + int(rng.integers(-2, 3))
                taken = 1 if (j & 1) else 0
                builder.fetch(addr, max(2, insts), taken)

    def _emit_branch_burst(self, builder: TraceBuilder, seg: CodeSegment,
                           visits: int, rng: np.random.Generator) -> None:
        sites = [pc for pc in self._branch_pcs
                 if seg.blocks[0] <= pc <= seg.blocks[-1] + LINE_SIZE]
        if not sites:
            return
        execs = max(1, visits * seg.n_blocks // max(1, len(sites)))
        for pc in sites:
            builder.branch_site(pc, execs, self._site_bias[pc])

    def _emit_data_burst(self, builder: TraceBuilder, rng: np.random.Generator,
                         data_blocks: np.ndarray, hot_data: np.ndarray,
                         cursor: int, n_events: int) -> int:
        n = len(data_blocks)
        for _ in range(n_events):
            if rng.random() < 0.35:
                addr = int(hot_data[int(rng.integers(0, len(hot_data)))])
            else:
                addr = int(data_blocks[cursor % n])
                cursor += 1 + int(rng.integers(0, 3))
            count = int(rng.integers(4, 13))
            if rng.random() < 0.30:
                builder.store(addr, count)
            else:
                builder.load(addr, count)
        return cursor

    def _schedule_loops(self, loop_budget: int,
                        rng: np.random.Generator) -> List:
        if not self._loop_hosts or loop_budget <= 0:
            return []
        weights = rng.dirichlet(np.ones(len(self._loop_hosts)) * 2.0)
        scheduled = []
        ipb = self.profile.insts_per_block
        for host, w in zip(self._loop_hosts, weights):
            budget = int(loop_budget * w)
            insts_per_iter = max(4, len(host.body) * ipb // 2)
            iterations = max(1, budget // insts_per_iter)
            if iterations < 2:
                continue
            scheduled.append((host, LoopSpec(
                blocks=tuple(host.body),
                iterations=iterations,
                insts_per_iteration=insts_per_iter,
                branches_per_iteration=1 + len(host.body) // 6,
            )))
        return scheduled

    # ------------------------------------------------------------------
    # Introspection used by characterization experiments
    # ------------------------------------------------------------------

    def footprint_blocks(self, index: int) -> "set[int]":
        """Unique instruction blocks of invocation ``index`` (Fig. 6a)."""
        return self.invocation_trace(index).instruction_blocks()

    def expected_footprint_bytes(self) -> int:
        return self.profile.footprint_bytes
