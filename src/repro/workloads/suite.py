"""The 20-function evaluation suite of Table 2.

Functions come from the Hotel Reservation application (DeathStarBench),
Google's Online Boutique, AWS authentication samples and FunctionBench;
Fibonacci, AES and Authentication appear in all three language runtimes.

Per-function parameters are calibrated to the paper's measurements:

* footprints span ~300KB (compact Go services) to ~800KB (Python/NodeJS),
  matching Fig. 6a;
* crypto/recursion workloads (AES, Fib) are loop-heavy, which is why they
  show the *smallest* perfect-I-cache opportunity in Fig. 10 (AES-P: 6.2%
  Jukebox speedup), while dispatch-heavy services (Auth-N/G) show the
  largest (Auth-N: 46% perfect-I$; Auth-G: 29.5% Jukebox);
* Pay-N has the largest working set and is the most metadata-budget
  sensitive function in Fig. 9; ProdL-G is among the least sensitive.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.workloads.profiles import (
    FunctionProfile,
    LANG_GO,
    LANG_NODEJS,
    LANG_PYTHON,
    LANGUAGE_DEFAULTS,
)

APP_HOTEL = "Hotel Reservation"
APP_BOUTIQUE = "Online Boutique"
APP_OTHER = "Other"


def _profile(name: str, abbrev: str, language: str, application: str,
             footprint_kb: int, instructions: int, data_ws_kb: int,
             loopiness: float, hot_fraction: float = 0.35,
             branch_bias: float = 0.85) -> FunctionProfile:
    defaults = LANGUAGE_DEFAULTS[language]
    return FunctionProfile(
        name=name,
        abbrev=abbrev,
        language=language,
        application=application,
        footprint_kb=footprint_kb,
        instructions=instructions,
        data_ws_kb=data_ws_kb,
        density=float(defaults["density"]),
        optional_fraction=float(defaults["optional_fraction"]),
        optional_include_prob=float(defaults["optional_include_prob"]),
        insts_per_block=int(defaults["insts_per_block"]),
        loopiness=loopiness,
        hot_fraction=hot_fraction,
        branch_bias=branch_bias,
    )


def build_suite() -> List[FunctionProfile]:
    """Construct the full 20-function suite in the paper's plot order."""
    return [
        # -- Python ------------------------------------------------------
        _profile("Fibonacci", "Fib-P", LANG_PYTHON, APP_OTHER,
                 footprint_kb=540, instructions=1_000_000, data_ws_kb=140,
                 loopiness=0.66, branch_bias=0.9),
        _profile("AES encryption", "AES-P", LANG_PYTHON, APP_OTHER,
                 footprint_kb=600, instructions=1_650_000, data_ws_kb=200,
                 loopiness=0.86, branch_bias=0.92),
        _profile("Authentication", "Auth-P", LANG_PYTHON, APP_OTHER,
                 footprint_kb=700, instructions=820_000, data_ws_kb=170,
                 loopiness=0.20, branch_bias=0.82),
        _profile("Email", "Email-P", LANG_PYTHON, APP_BOUTIQUE,
                 footprint_kb=760, instructions=1_000_000, data_ws_kb=210,
                 loopiness=0.26, branch_bias=0.84),
        _profile("Recommendation", "RecO-P", LANG_PYTHON, APP_BOUTIQUE,
                 footprint_kb=640, instructions=950_000, data_ws_kb=240,
                 loopiness=0.32, branch_bias=0.85),
        # -- NodeJS ------------------------------------------------------
        _profile("Fibonacci", "Fib-N", LANG_NODEJS, APP_OTHER,
                 footprint_kb=500, instructions=950_000, data_ws_kb=130,
                 loopiness=0.62, branch_bias=0.9),
        _profile("AES encryption", "AES-N", LANG_NODEJS, APP_OTHER,
                 footprint_kb=620, instructions=1_500_000, data_ws_kb=190,
                 loopiness=0.84, branch_bias=0.92),
        _profile("Authentication", "Auth-N", LANG_NODEJS, APP_OTHER,
                 footprint_kb=790, instructions=760_000, data_ws_kb=160,
                 loopiness=0.12, branch_bias=0.80),
        _profile("Currency", "Curr-N", LANG_NODEJS, APP_BOUTIQUE,
                 footprint_kb=560, instructions=800_000, data_ws_kb=150,
                 loopiness=0.30, branch_bias=0.86),
        _profile("Payment", "Pay-N", LANG_NODEJS, APP_BOUTIQUE,
                 footprint_kb=810, instructions=1_050_000, data_ws_kb=260,
                 loopiness=0.24, branch_bias=0.83),
        # -- Go ----------------------------------------------------------
        _profile("Fibonacci", "Fib-G", LANG_GO, APP_OTHER,
                 footprint_kb=310, instructions=800_000, data_ws_kb=100,
                 loopiness=0.66, branch_bias=0.9),
        _profile("AES encryption", "AES-G", LANG_GO, APP_OTHER,
                 footprint_kb=340, instructions=1_400_000, data_ws_kb=160,
                 loopiness=0.85, branch_bias=0.92),
        _profile("Authentication", "Auth-G", LANG_GO, APP_OTHER,
                 footprint_kb=430, instructions=640_000, data_ws_kb=120,
                 loopiness=0.14, branch_bias=0.81),
        _profile("Geo", "Geo-G", LANG_GO, APP_HOTEL,
                 footprint_kb=380, instructions=700_000, data_ws_kb=140,
                 loopiness=0.30, branch_bias=0.86),
        _profile("ProductCatalog", "ProdL-G", LANG_GO, APP_BOUTIQUE,
                 footprint_kb=330, instructions=680_000, data_ws_kb=110,
                 loopiness=0.32, branch_bias=0.87),
        _profile("Profile", "Prof-G", LANG_GO, APP_HOTEL,
                 footprint_kb=360, instructions=700_000, data_ws_kb=130,
                 loopiness=0.30, branch_bias=0.86),
        _profile("Rate", "Rate-G", LANG_GO, APP_HOTEL,
                 footprint_kb=400, instructions=720_000, data_ws_kb=150,
                 loopiness=0.28, branch_bias=0.85),
        _profile("Recommendation", "RecH-G", LANG_GO, APP_HOTEL,
                 footprint_kb=370, instructions=690_000, data_ws_kb=140,
                 loopiness=0.30, branch_bias=0.86),
        _profile("User", "User-G", LANG_GO, APP_HOTEL,
                 footprint_kb=350, instructions=660_000, data_ws_kb=110,
                 loopiness=0.24, branch_bias=0.84),
        _profile("Shipping", "Ship-G", LANG_GO, APP_BOUTIQUE,
                 footprint_kb=410, instructions=730_000, data_ws_kb=140,
                 loopiness=0.28, branch_bias=0.86),
    ]


#: The canonical suite instance, in the paper's plot order.
SUITE: List[FunctionProfile] = build_suite()

#: Lookup by abbreviation ("Auth-G", "Pay-N", ...).
BY_ABBREV: Dict[str, FunctionProfile] = {p.abbrev: p for p in SUITE}

#: The representative per-language trio used by Figs. 9 and 13.
REPRESENTATIVES = ("Email-P", "Pay-N", "ProdL-G")


def get_profile(abbrev: str) -> FunctionProfile:
    """Return the suite profile for ``abbrev``, with a helpful error."""
    try:
        return BY_ABBREV[abbrev]
    except KeyError:
        known = ", ".join(sorted(BY_ABBREV))
        raise ConfigurationError(
            f"unknown function {abbrev!r}; known: {known}"
        ) from None


def suite_subset(abbrevs: Optional[List[str]] = None) -> List[FunctionProfile]:
    """Return the listed profiles (or the full suite), preserving order."""
    if abbrevs is None:
        return list(SUITE)
    return [get_profile(a) for a in abbrevs]
