"""Trace serialization: persist invocation traces as ``.npz`` archives.

Two use cases:

* *reproducibility*: archive the exact traces behind a published number;
* *interchange*: drive the simulator from traces produced by an external
  tool (a real L1-I access trace reduced to this event format) instead of
  the synthetic generator.

The format stores the four event arrays, the loop table flattened into
parallel arrays, and a small JSON header with versioning.
"""

from __future__ import annotations

import json
import pathlib
from typing import List, Union

import numpy as np

from repro.errors import TraceError
from repro.workloads.trace import InvocationTrace, LoopSpec

FORMAT_VERSION = 1
_PathLike = Union[str, pathlib.Path]


def save_trace(trace: InvocationTrace, path: _PathLike) -> None:
    """Write ``trace`` to ``path`` (``.npz``; compressed)."""
    loop_blocks = np.asarray(
        [b for spec in trace.loops for b in spec.blocks], dtype=np.int64)
    loop_lens = np.asarray([len(spec.blocks) for spec in trace.loops],
                           dtype=np.int64)
    loop_iters = np.asarray([spec.iterations for spec in trace.loops],
                            dtype=np.int64)
    loop_insts = np.asarray([spec.insts_per_iteration for spec in trace.loops],
                            dtype=np.int64)
    loop_branches = np.asarray(
        [spec.branches_per_iteration for spec in trace.loops], dtype=np.int64)
    header = json.dumps({
        "format": "repro-invocation-trace",
        "version": FORMAT_VERSION,
        "events": int(len(trace)),
        "loops": len(trace.loops),
        "instructions": int(trace.total_instructions),
    })
    np.savez_compressed(
        path,
        header=np.frombuffer(header.encode("utf-8"), dtype=np.uint8),
        kinds=trace.kinds,
        addrs=trace.addrs,
        args=trace.args,
        args2=trace.args2,
        loop_blocks=loop_blocks,
        loop_lens=loop_lens,
        loop_iters=loop_iters,
        loop_insts=loop_insts,
        loop_branches=loop_branches,
    )


def load_trace(path: _PathLike) -> InvocationTrace:
    """Read a trace written by :func:`save_trace`."""
    path = pathlib.Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as data:
        try:
            header = json.loads(bytes(data["header"]).decode("utf-8"))
        except (KeyError, ValueError) as exc:
            raise TraceError(f"{path}: missing or corrupt trace header") from exc
        if header.get("format") != "repro-invocation-trace":
            raise TraceError(f"{path}: not an invocation-trace archive")
        if header.get("version") != FORMAT_VERSION:
            raise TraceError(
                f"{path}: unsupported trace version {header.get('version')}")
        loops: List[LoopSpec] = []
        cursor = 0
        blocks = data["loop_blocks"]
        for length, iters, insts, branches in zip(
                data["loop_lens"], data["loop_iters"], data["loop_insts"],
                data["loop_branches"]):
            body = tuple(int(b) for b in blocks[cursor:cursor + int(length)])
            cursor += int(length)
            loops.append(LoopSpec(blocks=body, iterations=int(iters),
                                  insts_per_iteration=int(insts),
                                  branches_per_iteration=int(branches)))
        trace = InvocationTrace(
            kinds=data["kinds"].copy(),
            addrs=data["addrs"].copy(),
            args=data["args"].copy(),
            args2=data["args2"].copy(),
            loops=loops,
        )
    if trace.total_instructions != header["instructions"]:
        raise TraceError(
            f"{path}: instruction count mismatch "
            f"({trace.total_instructions} != {header['instructions']})")
    return trace
