"""Trace serialization: persist invocation traces as ``.npz`` archives.

Two use cases:

* *reproducibility*: archive the exact traces behind a published number;
* *interchange*: drive the simulator from traces produced by an external
  tool (a real L1-I access trace reduced to this event format) instead of
  the synthetic generator.

The format stores the four event arrays, the loop table flattened into
parallel arrays, and a small JSON header with versioning.

Format history:

* **v1** -- event arrays + loop table + instruction count.
* **v2** -- adds a SHA-256 digest over every stored column to the header.
  The event arrays fully determine the trace -- and therefore its derived
  :class:`~repro.workloads.trace.ColumnarTrace` IR -- so verifying the
  digest on load turns the "columnar round-trip is lossless" property
  from an assumption into a checked contract: a bit-flipped archive is a
  typed :class:`~repro.errors.TraceError`, never a silently different
  simulation.

v1 archives remain loadable (the arrays carry all information); unknown
*newer* versions are rejected with a typed error naming the supported set
rather than being misparsed.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from typing import List, Union

import numpy as np

from repro.errors import TraceError
from repro.workloads.trace import InvocationTrace, LoopSpec

#: Version written by :func:`save_trace`.
FORMAT_VERSION = 2

#: Versions :func:`load_trace` understands.
SUPPORTED_VERSIONS = (1, 2)

_PathLike = Union[str, pathlib.Path]

#: Stored column arrays, in digest order.  Order is part of the format:
#: the digest is over ``name || dtype || raw bytes`` for each entry.
_COLUMNS = ("kinds", "addrs", "args", "args2", "loop_blocks", "loop_lens",
            "loop_iters", "loop_insts", "loop_branches")


def _column_digest(arrays: dict) -> str:
    digest = hashlib.sha256()
    for name in _COLUMNS:
        array = np.ascontiguousarray(arrays[name])
        digest.update(name.encode())
        digest.update(b"\0")
        digest.update(str(array.dtype).encode())
        digest.update(b"\0")
        digest.update(array.tobytes())
    return digest.hexdigest()


def save_trace(trace: InvocationTrace, path: _PathLike) -> None:
    """Write ``trace`` to ``path`` (``.npz``; compressed)."""
    arrays = {
        "kinds": trace.kinds,
        "addrs": trace.addrs,
        "args": trace.args,
        "args2": trace.args2,
        "loop_blocks": np.asarray(
            [b for spec in trace.loops for b in spec.blocks], dtype=np.int64),
        "loop_lens": np.asarray([len(spec.blocks) for spec in trace.loops],
                                dtype=np.int64),
        "loop_iters": np.asarray([spec.iterations for spec in trace.loops],
                                 dtype=np.int64),
        "loop_insts": np.asarray(
            [spec.insts_per_iteration for spec in trace.loops],
            dtype=np.int64),
        "loop_branches": np.asarray(
            [spec.branches_per_iteration for spec in trace.loops],
            dtype=np.int64),
    }
    header = json.dumps({
        "format": "repro-invocation-trace",
        "version": FORMAT_VERSION,
        "events": int(len(trace)),
        "loops": len(trace.loops),
        "instructions": int(trace.total_instructions),
        "columns_sha256": _column_digest(arrays),
    })
    np.savez_compressed(
        path,
        header=np.frombuffer(header.encode("utf-8"), dtype=np.uint8),
        **arrays,
    )


def load_trace(path: _PathLike) -> InvocationTrace:
    """Read a trace written by :func:`save_trace`.

    Raises :class:`~repro.errors.TraceError` on a missing/corrupt header,
    an unsupported format version, a column-digest mismatch (v2) or an
    instruction-count mismatch.
    """
    path = pathlib.Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as data:
        try:
            header = json.loads(bytes(data["header"]).decode("utf-8"))
        except (KeyError, ValueError) as exc:
            raise TraceError(f"{path}: missing or corrupt trace header") from exc
        if header.get("format") != "repro-invocation-trace":
            raise TraceError(f"{path}: not an invocation-trace archive")
        version = header.get("version")
        if version not in SUPPORTED_VERSIONS:
            raise TraceError(
                f"{path}: unsupported trace version {version!r}; this "
                f"reader supports "
                f"{', '.join(str(v) for v in SUPPORTED_VERSIONS)}")
        arrays = {name: data[name] for name in _COLUMNS}
        if version >= 2:
            stored = header.get("columns_sha256")
            actual = _column_digest(arrays)
            if stored != actual:
                raise TraceError(
                    f"{path}: column digest mismatch (archive corrupt or "
                    f"tampered): header says {stored}, columns hash to "
                    f"{actual}")
        loops: List[LoopSpec] = []
        cursor = 0
        blocks = arrays["loop_blocks"]
        for length, iters, insts, branches in zip(
                arrays["loop_lens"], arrays["loop_iters"],
                arrays["loop_insts"], arrays["loop_branches"]):
            body = tuple(int(b) for b in blocks[cursor:cursor + int(length)])
            cursor += int(length)
            loops.append(LoopSpec(blocks=body, iterations=int(iters),
                                  insts_per_iteration=int(insts),
                                  branches_per_iteration=int(branches)))
        trace = InvocationTrace(
            kinds=arrays["kinds"].copy(),
            addrs=arrays["addrs"].copy(),
            args=arrays["args"].copy(),
            args2=arrays["args2"].copy(),
            loops=loops,
        )
    if trace.total_instructions != header["instructions"]:
        raise TraceError(
            f"{path}: instruction count mismatch "
            f"({trace.total_instructions} != {header['instructions']})")
    return trace
