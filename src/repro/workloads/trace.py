"""Invocation trace representation.

An :class:`InvocationTrace` is the unit of work the simulator executes: the
instruction-block / data-block / branch activity of *one invocation* of one
serverless function (what gem5 would observe between gRPC request arrival
and response, Sec. 4.2).

Traces are compact: consecutive activity is aggregated so that a ~1M
instruction invocation is represented by a few tens of thousands of events.
Event kinds:

``IFETCH``
    A visit to one instruction cache block executing ``arg`` instructions
    with ``arg2`` taken branches.  Cache behaviour is simulated exactly.
``LOAD`` / ``STORE``
    ``arg`` consecutive accesses to one data block (only the first can miss).
``BRANCH``
    An aggregate of ``arg`` dynamic executions of the *conditional branch
    site* at ``addr`` whose taken probability is ``arg2``/255.  Direction
    mispredicts are modeled analytically per site (see
    :class:`repro.sim.core.LukewarmCore`).
``LOOP``
    ``arg`` = loop id into :attr:`InvocationTrace.loops`.  The loop body is
    simulated through the hierarchy once; remaining iterations are charged
    analytically (a tight loop resident in the L1-I cannot miss again).

This aggregation is a *documented abstraction* (DESIGN.md Sec. 3): it keeps
the Python simulator tractable while preserving the miss streams that drive
the paper's results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.errors import TraceError
from repro.units import LINE_SIZE, block_addr

IFETCH = 0
LOAD = 1
STORE = 2
BRANCH = 3
LOOP = 4

KIND_NAMES = {IFETCH: "IFETCH", LOAD: "LOAD", STORE: "STORE",
              BRANCH: "BRANCH", LOOP: "LOOP"}


@dataclass(frozen=True)
class LoopSpec:
    """A tight loop: ``iterations`` passes over ``blocks`` (byte addresses).

    ``insts_per_iteration`` counts all instructions retired per pass;
    ``branches_per_iteration`` is the number of (well-predicted) taken
    branches per pass, used for fetch-bandwidth accounting.  The loop-back
    branch itself mispredicts once, on exit.
    """

    blocks: Tuple[int, ...]
    iterations: int
    insts_per_iteration: int
    branches_per_iteration: int = 1

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise TraceError(f"loop must iterate at least once: {self.iterations}")
        if not self.blocks:
            raise TraceError("loop body must contain at least one block")
        if self.insts_per_iteration < 1:
            raise TraceError("loop must retire at least one instruction per pass")

    @property
    def body_bytes(self) -> int:
        return len(self.blocks) * LINE_SIZE

    @property
    def total_insts(self) -> int:
        return self.iterations * self.insts_per_iteration


@dataclass(eq=False)  # array fields make element-wise __eq__ a footgun
class InvocationTrace:
    """One invocation's activity as parallel event arrays plus a loop table."""

    kinds: np.ndarray
    addrs: np.ndarray
    args: np.ndarray
    args2: np.ndarray
    loops: List[LoopSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        n = len(self.kinds)
        if not (len(self.addrs) == len(self.args) == len(self.args2) == n):
            raise TraceError("trace arrays must have equal length")

    def __len__(self) -> int:
        return len(self.kinds)

    @property
    def total_instructions(self) -> int:
        """Instructions retired by this invocation (including loop bodies)."""
        insts = int(self.args[self.kinds == IFETCH].sum())
        for idx in np.nonzero(self.kinds == LOOP)[0]:
            insts += self.loops[int(self.args[idx])].total_insts
        return insts

    def instruction_blocks(self) -> "set[int]":
        """Unique instruction cache block addresses touched (the footprint
        measured in Fig. 6a)."""
        blocks = {int(a) for a in self.addrs[self.kinds == IFETCH]}
        for idx in np.nonzero(self.kinds == LOOP)[0]:
            blocks.update(self.loops[int(self.args[idx])].blocks)
        return blocks

    def instruction_footprint_bytes(self) -> int:
        """Instruction footprint in bytes at cache-block granularity."""
        return len(self.instruction_blocks()) * LINE_SIZE

    def data_blocks(self) -> "set[int]":
        """Unique data block addresses touched."""
        mask = (self.kinds == LOAD) | (self.kinds == STORE)
        return {int(a) for a in self.addrs[mask]}

    def events(self) -> Iterator[Tuple[int, int, int, int]]:
        """Iterate ``(kind, addr, arg, arg2)`` tuples (test/debug helper)."""
        for i in range(len(self.kinds)):
            yield (int(self.kinds[i]), int(self.addrs[i]),
                   int(self.args[i]), int(self.args2[i]))


class TraceBuilder:
    """Incrementally build an :class:`InvocationTrace`."""

    def __init__(self) -> None:
        self._kinds: List[int] = []
        self._addrs: List[int] = []
        self._args: List[int] = []
        self._args2: List[int] = []
        self._loops: List[LoopSpec] = []

    def fetch(self, addr: int, insts: int, taken_branches: int = 0) -> None:
        """Visit one instruction block, retiring ``insts`` instructions."""
        if insts < 1:
            raise TraceError(f"IFETCH must retire at least one instruction ({insts})")
        self._kinds.append(IFETCH)
        self._addrs.append(block_addr(addr))
        self._args.append(insts)
        self._args2.append(taken_branches)

    def load(self, addr: int, count: int = 1) -> None:
        """``count`` consecutive loads to one data block."""
        self._append_data(LOAD, addr, count)

    def store(self, addr: int, count: int = 1) -> None:
        """``count`` consecutive stores to one data block."""
        self._append_data(STORE, addr, count)

    def _append_data(self, kind: int, addr: int, count: int) -> None:
        if count < 1:
            raise TraceError(f"data event needs a positive count ({count})")
        self._kinds.append(kind)
        self._addrs.append(block_addr(addr))
        self._args.append(count)
        self._args2.append(0)

    def branch_site(self, pc: int, executions: int, taken_prob: float) -> None:
        """Aggregate ``executions`` dynamic branches at conditional site ``pc``."""
        if executions < 1:
            raise TraceError("branch site needs a positive execution count")
        if not 0.0 <= taken_prob <= 1.0:
            raise TraceError(f"taken probability out of range: {taken_prob}")
        self._kinds.append(BRANCH)
        self._addrs.append(pc)
        self._args.append(executions)
        self._args2.append(int(round(taken_prob * 255)))

    def loop(self, spec: LoopSpec) -> None:
        """Append a tight loop."""
        self._kinds.append(LOOP)
        self._addrs.append(spec.blocks[0])
        self._args.append(len(self._loops))
        self._args2.append(0)
        self._loops.append(spec)

    def extend_walk(self, blocks: Sequence[int], insts_per_block: int,
                    taken_branches_per_block: int = 1) -> None:
        """Visit ``blocks`` in order, a common straight-line-code idiom."""
        for addr in blocks:
            self.fetch(addr, insts_per_block, taken_branches_per_block)

    def build(self) -> InvocationTrace:
        """Freeze the builder into an immutable-ish trace."""
        return InvocationTrace(
            kinds=np.asarray(self._kinds, dtype=np.uint8),
            addrs=np.asarray(self._addrs, dtype=np.int64),
            args=np.asarray(self._args, dtype=np.int64),
            args2=np.asarray(self._args2, dtype=np.int64),
            loops=list(self._loops),
        )

    def __len__(self) -> int:
        return len(self._kinds)
