"""Invocation trace representation.

An :class:`InvocationTrace` is the unit of work the simulator executes: the
instruction-block / data-block / branch activity of *one invocation* of one
serverless function (what gem5 would observe between gRPC request arrival
and response, Sec. 4.2).

Traces are compact: consecutive activity is aggregated so that a ~1M
instruction invocation is represented by a few tens of thousands of events.
Event kinds:

``IFETCH``
    A visit to one instruction cache block executing ``arg`` instructions
    with ``arg2`` taken branches.  Cache behaviour is simulated exactly.
``LOAD`` / ``STORE``
    ``arg`` consecutive accesses to one data block (only the first can miss).
``BRANCH``
    An aggregate of ``arg`` dynamic executions of the *conditional branch
    site* at ``addr`` whose taken probability is ``arg2``/255.  Direction
    mispredicts are modeled analytically per site (see
    :class:`repro.sim.core.Simulator`).
``LOOP``
    ``arg`` = loop id into :attr:`InvocationTrace.loops`.  The loop body is
    simulated through the hierarchy once; remaining iterations are charged
    analytically (a tight loop resident in the L1-I cannot miss again).

This aggregation is a *documented abstraction* (DESIGN.md Sec. 3): it keeps
the Python simulator tractable while preserving the miss streams that drive
the paper's results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import TraceError
from repro.units import LINE_SHIFT, LINE_SIZE, PAGE_SHIFT, block_addr

IFETCH = 0
LOAD = 1
STORE = 2
BRANCH = 3
LOOP = 4

KIND_NAMES = {IFETCH: "IFETCH", LOAD: "LOAD", STORE: "STORE",
              BRANCH: "BRANCH", LOOP: "LOOP"}


@dataclass(frozen=True)
class LoopSpec:
    """A tight loop: ``iterations`` passes over ``blocks`` (byte addresses).

    ``insts_per_iteration`` counts all instructions retired per pass;
    ``branches_per_iteration`` is the number of (well-predicted) taken
    branches per pass, used for fetch-bandwidth accounting.  The loop-back
    branch itself mispredicts once, on exit.
    """

    blocks: Tuple[int, ...]
    iterations: int
    insts_per_iteration: int
    branches_per_iteration: int = 1

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise TraceError(f"loop must iterate at least once: {self.iterations}")
        if not self.blocks:
            raise TraceError("loop body must contain at least one block")
        if self.insts_per_iteration < 1:
            raise TraceError("loop must retire at least one instruction per pass")

    @property
    def body_bytes(self) -> int:
        return len(self.blocks) * LINE_SIZE

    @property
    def total_insts(self) -> int:
        return self.iterations * self.insts_per_iteration


@dataclass(eq=False)  # array fields make element-wise __eq__ a footgun
class InvocationTrace:
    """One invocation's activity as parallel event arrays plus a loop table."""

    kinds: np.ndarray
    addrs: np.ndarray
    args: np.ndarray
    args2: np.ndarray
    loops: List[LoopSpec] = field(default_factory=list)
    #: Lazily built columnar IR (see :meth:`columnar`); not part of the
    #: constructor so existing call sites are unaffected.
    _columnar: "Optional[ColumnarTrace]" = field(default=None, init=False,
                                                 repr=False)

    def __post_init__(self) -> None:
        n = len(self.kinds)
        if not (len(self.addrs) == len(self.args) == len(self.args2) == n):
            raise TraceError("trace arrays must have equal length")

    def columnar(self) -> "ColumnarTrace":
        """The columnar IR of this trace, built once and cached on the
        trace object (never in module state, so sweeps stay deterministic
        and workers stay independent)."""
        if self._columnar is None:
            self._columnar = ColumnarTrace.from_trace(self)
        return self._columnar

    def __len__(self) -> int:
        return len(self.kinds)

    @property
    def total_instructions(self) -> int:
        """Instructions retired by this invocation (including loop bodies)."""
        insts = int(self.args[self.kinds == IFETCH].sum())
        for idx in np.nonzero(self.kinds == LOOP)[0]:
            insts += self.loops[int(self.args[idx])].total_insts
        return insts

    def instruction_blocks(self) -> "set[int]":
        """Unique instruction cache block addresses touched (the footprint
        measured in Fig. 6a)."""
        blocks = {int(a) for a in self.addrs[self.kinds == IFETCH]}
        for idx in np.nonzero(self.kinds == LOOP)[0]:
            blocks.update(self.loops[int(self.args[idx])].blocks)
        return blocks

    def instruction_footprint_bytes(self) -> int:
        """Instruction footprint in bytes at cache-block granularity."""
        return len(self.instruction_blocks()) * LINE_SIZE

    def data_blocks(self) -> "set[int]":
        """Unique data block addresses touched."""
        mask = (self.kinds == LOAD) | (self.kinds == STORE)
        return {int(a) for a in self.addrs[mask]}

    def events(self) -> Iterator[Tuple[int, int, int, int]]:
        """Iterate ``(kind, addr, arg, arg2)`` tuples (test/debug helper)."""
        for i in range(len(self.kinds)):
            yield (int(self.kinds[i]), int(self.addrs[i]),
                   int(self.args[i]), int(self.args2[i]))


#: Op tags of the columnar program (first element of each ``ops`` entry).
OP_WALKS = 0   #: ``(OP_WALKS, start, end, period, WalkPattern)``
OP_EVENTS = 1  #: ``(OP_EVENTS, start, end)`` -- heterogeneous scalar span


class WalkPattern:
    """One period of a repeated instruction-block walk.

    ``FunctionModel._walk_segment`` visits the same block sequence
    ``visits`` times back-to-back, so a maximal IFETCH run decomposes into
    ``n`` repetitions of a short pattern.  The pattern carries exactly the
    machine-independent derived data the batch interpreter needs to
    classify and bulk-execute a walk: block numbers, the deduplicated
    last-access order (the LRU order a full pass leaves behind), and the
    page-level run-length encoding driving I-TLB accounting.
    """

    __slots__ = ("addrs", "blocks", "block_set", "unique_last",
                 "all_distinct", "page_runs", "key", "groups_cache",
                 "_tlb_fits")

    def __init__(self, addrs: Sequence[int]) -> None:
        #: Per-set-geometry block groupings, keyed by set mask (filled by
        #: :class:`repro.sim.hierarchy.RegionSummaries`).  The grouping is
        #: a pure function of (blocks, mask), so caching on the pattern is
        #: sound for any cache with that mask.
        self.groups_cache: Dict[int, object] = {}
        #: Memoized :meth:`itlb_fits` verdicts keyed by TLB geometry.
        self._tlb_fits: Dict[Tuple[int, int], bool] = {}
        self.addrs: Tuple[int, ...] = tuple(int(a) for a in addrs)
        self.blocks: Tuple[int, ...] = tuple(a >> LINE_SHIFT for a in self.addrs)
        self.key = self.blocks
        self.block_set = frozenset(self.blocks)
        # Deduplicate keeping the *last* occurrence: after one pass, the
        # LRU order of the touched blocks is their last-access order.
        seen: Dict[int, None] = {}
        for b in self.blocks:
            if b in seen:
                del seen[b]
            seen[b] = None
        self.unique_last: Tuple[int, ...] = tuple(seen)
        self.all_distinct = len(self.block_set) == len(self.blocks)
        runs: List[Tuple[int, int, int]] = []
        for off, addr in enumerate(self.addrs):
            page = addr >> PAGE_SHIFT
            if runs and runs[-1][1] == page:
                start, _, length = runs[-1]
                runs[-1] = (start, page, length + 1)
            else:
                runs.append((off, page, 1))
        self.page_runs: Tuple[Tuple[int, int, int], ...] = tuple(runs)

    def itlb_fits(self, set_mask: int, assoc: int) -> bool:
        """True when no TLB set holds more than ``assoc`` of this
        pattern's distinct pages.

        Under that bound, one full walk leaves every pattern page
        resident: a page touched earlier in the walk sits at the MRU end
        of its set, so later insertions within the same walk can only
        evict *other* pages.  Repeat walks of the pattern are then
        guaranteed all-hits with an unchanged final LRU order (the same
        access sequence reproduces the same MRU ordering), which is what
        lets the columnar backend fold them without touching the TLB.
        """
        key = (set_mask, assoc)
        ok = self._tlb_fits.get(key)
        if ok is None:
            per_set: Dict[int, int] = {}
            for page in {p for _off, p, _len in self.page_runs}:
                idx = page & set_mask
                per_set[idx] = per_set.get(idx, 0) + 1
            ok = not per_set or max(per_set.values()) <= assoc
            self._tlb_fits[key] = ok
        return ok

    def __len__(self) -> int:
        return len(self.blocks)


class MachineColumns:
    """Per-event float columns and precomputed totals for one core geometry.

    ``retire[i] = args[i] / width`` and ``fb[i] = args2[i] * taken_penalty``
    are elementwise copies of the scalar interpreter's per-event operations;
    ``step0 = retire + fb`` is the cycle step of a stall-free fetch.  The
    ``*_list`` views are plain-``float`` copies for the interpreter's
    small-chunk Python loops (indexing a list avoids per-element
    ``np.float64`` boxing).

    ``ret_final`` / ``fb_final`` are the invocation totals of the
    ``retiring`` and ``fetch_bandwidth`` Top-Down accumulators.  Both
    receive *state-independent* add sequences in the scalar interpreter --
    every IFETCH adds ``args[i]/width`` (resp. ``args2[i]*taken_penalty``)
    and every LOOP adds fixed per-spec values, none of which depend on
    cache or predictor state -- so the exact left fold is computed here
    once per (trace, machine) with ``np.add.accumulate`` (a strict
    sequential fold, bitwise-identical to the scalar ``+=`` loop).
    """

    __slots__ = ("retire", "fb", "step0", "retire_list", "fb_list",
                 "step0_list", "ret_final", "fb_final", "_stall_steps")

    def __init__(self, ct: "ColumnarTrace", width: int,
                 taken_penalty: float) -> None:
        self.retire = ct.args / width
        self.fb = ct.args2 * taken_penalty
        self.step0 = self.retire + self.fb
        self.retire_list = self.retire.tolist()
        self.fb_list = self.fb.tolist()
        self.step0_list = self.step0.tolist()
        self._stall_steps: Dict[float, list] = {}
        self.ret_final, self.fb_final = self._fold_totals(
            ct, width, taken_penalty)

    def stall_steps(self, stall: float) -> list:
        """Per-event cycle steps under a constant stall: element ``k`` is
        ``(stall + retire[k]) + fb[k]`` -- the scalar interpreter's exact
        operation order, computed elementwise (each NumPy op is correctly
        rounded, so every element matches the scalar float bit for bit).
        Cached per stall constant; constants depend on machine factors and
        the per-run memory contention, giving a handful of keys."""
        steps = self._stall_steps.get(stall)
        if steps is None:
            if len(self._stall_steps) >= 8:  # bound growth under
                self._stall_steps.clear()    # per-cell contention sweeps
            steps = ((stall + self.retire) + self.fb).tolist()
            self._stall_steps[stall] = steps
        return steps

    def _fold_totals(self, ct: "ColumnarTrace", width: int,
                     taken_penalty: float) -> Tuple[float, float]:
        if_idx = ct.ifetch_idx
        retire_if = self.retire[if_idx]
        fb_if = self.fb[if_idx]
        # The leading 0.0 seeds the fold at the accumulator's start value.
        zero = np.zeros(1)
        if len(ct.loop_idx) == 0:
            pieces_r = [zero, retire_if]
            pieces_f = [zero, fb_if]
        else:
            # Splice each loop's contributions into the IFETCH sequence at
            # its event position, replaying _run_loop's adds exactly.
            pieces_r = [zero]
            pieces_f = [zero]
            args = ct.args
            prev = 0
            for li in ct.loop_idx.tolist():
                a = np.searchsorted(if_idx, prev)
                b = np.searchsorted(if_idx, li)
                pieces_r.append(retire_if[a:b])
                pieces_f.append(fb_if[a:b])
                spec = ct.loops[int(args[li])]
                n_blocks = len(spec.blocks)
                insts_per_block = max(1.0, spec.insts_per_iteration / n_blocks)
                pieces_r.append(np.full(n_blocks, insts_per_block / width))
                remaining = spec.iterations - 1
                if remaining > 0:
                    pieces_r.append(np.array(
                        [remaining * spec.insts_per_iteration / width]))
                    pieces_f.append(np.array(
                        [remaining * spec.branches_per_iteration
                         * taken_penalty]))
                prev = li
            a = np.searchsorted(if_idx, prev)
            pieces_r.append(retire_if[a:])
            pieces_f.append(fb_if[a:])
        ret_final = float(np.add.accumulate(np.concatenate(pieces_r))[-1])
        fb_final = float(np.add.accumulate(np.concatenate(pieces_f))[-1])
        return ret_final, fb_final


def _find_period(addrs: np.ndarray, max_candidates: int = 4) -> int:
    """Smallest period ``p`` such that the run is whole repetitions of its
    first ``p`` elements, or ``len(addrs)`` when it is not periodic.

    Candidates are the first few recurrences of the leading address; each
    is verified exactly with a shifted-equality check, so a wrong guess can
    never be returned.
    """
    n = len(addrs)
    candidates = np.nonzero(addrs == addrs[0])[0]
    for p in candidates[1:1 + max_candidates]:
        p = int(p)
        if n % p == 0 and np.array_equal(addrs[p:], addrs[:-p]):
            return p
    return n


@dataclass(eq=False)
class ColumnarTrace:
    """Columnar IR of one :class:`InvocationTrace`.

    Parallel columns (event kind / block / page / region id / arg / arg2)
    plus a decoded *op program* that run-length-encodes repeated block
    walks: the batch interpreter in :mod:`repro.sim.batch` consumes ops,
    not events, and charges whole walks at a time.  Everything here is a
    pure function of the trace -- machine-dependent float columns are
    cached per ``(issue width, taken-branch penalty)`` on first use.

    Built once per trace via :meth:`InvocationTrace.columnar`.
    """

    #: The originating trace (loops table and event arrays are shared).
    kinds: np.ndarray
    addrs: np.ndarray
    args: np.ndarray
    args2: np.ndarray
    #: Cache-block and page number per event (valid for memory events).
    blocks: np.ndarray
    pages: np.ndarray
    #: Region id per event: the index of the op covering the event.
    regions: np.ndarray
    #: Decoded op program (``OP_WALKS`` / ``OP_EVENTS`` tuples).
    ops: List[tuple]
    loops: List[LoopSpec]
    #: Plain-int copies of the columns for the scalar fallback paths
    #: (indexing a Python list returns ``int``, not ``np.int64``).
    kinds_list: List[int]
    addrs_list: List[int]
    args_list: List[int]
    args2_list: List[int]
    blocks_list: List[int]
    pages_list: List[int]
    #: Event indices of IFETCH / LOOP events (machine-total splicing).
    ifetch_idx: np.ndarray
    loop_idx: np.ndarray
    #: Instructions retired by the invocation (= the exact integer total
    #: the scalar interpreter accumulates event by event).
    instr_total: int
    _machine_columns: Dict[Tuple[float, float], MachineColumns] = field(
        default_factory=dict, repr=False)
    _branch_steady: Dict[float, list] = field(default_factory=dict,
                                              repr=False)

    def branch_steady(self, correlation_factor: float) -> list:
        """Per-event steady-state mispredict rate: element ``i`` is
        ``2.0 * p * (1.0 - p) * correlation_factor`` with
        ``p = args2[i] / 255.0`` -- the branch model's exact operation
        order, computed elementwise (each NumPy op is correctly rounded,
        so every element matches the scalar float bit for bit).  Only
        meaningful at BRANCH positions; cached per correlation factor."""
        col = self._branch_steady.get(correlation_factor)
        if col is None:
            p = self.args2 / 255.0
            col = (2.0 * p * (1.0 - p) * correlation_factor).tolist()
            self._branch_steady[correlation_factor] = col
        return col

    @classmethod
    def from_trace(cls, trace: "InvocationTrace") -> "ColumnarTrace":
        kinds = trace.kinds
        addrs = trace.addrs
        n = len(kinds)
        blocks = addrs >> LINE_SHIFT
        pages = addrs >> PAGE_SHIFT
        regions = np.empty(n, dtype=np.int32)
        ops: List[tuple] = []
        is_fetch = kinds == IFETCH
        # Boundaries of maximal IFETCH runs.
        flips = np.nonzero(np.diff(is_fetch.astype(np.int8)))[0] + 1
        bounds = [0, *flips.tolist(), n]
        for idx in range(len(bounds) - 1):
            start, end = bounds[idx], bounds[idx + 1]
            if start == end:
                continue
            if is_fetch[start]:
                run = addrs[start:end]
                period = _find_period(run)
                pattern = WalkPattern(run[:period].tolist())
                ops.append((OP_WALKS, start, end, period, pattern))
            else:
                ops.append((OP_EVENTS, start, end))
            regions[start:end] = len(ops) - 1
        return cls(
            kinds=kinds, addrs=addrs, args=trace.args, args2=trace.args2,
            blocks=blocks, pages=pages, regions=regions, ops=ops,
            loops=trace.loops,
            kinds_list=kinds.tolist(), addrs_list=addrs.tolist(),
            args_list=trace.args.tolist(), args2_list=trace.args2.tolist(),
            blocks_list=blocks.tolist(), pages_list=pages.tolist(),
            ifetch_idx=np.nonzero(is_fetch)[0],
            loop_idx=np.nonzero(kinds == LOOP)[0],
            instr_total=trace.total_instructions,
        )

    def __len__(self) -> int:
        return len(self.kinds)

    def machine_columns(self, width: int,
                        taken_penalty: float) -> MachineColumns:
        """The :class:`MachineColumns` for one core geometry, cached."""
        key = (width, taken_penalty)
        cols = self._machine_columns.get(key)
        if cols is None:
            cols = MachineColumns(self, width, taken_penalty)
            self._machine_columns[key] = cols
        return cols


class TraceBuilder:
    """Incrementally build an :class:`InvocationTrace`."""

    def __init__(self) -> None:
        self._kinds: List[int] = []
        self._addrs: List[int] = []
        self._args: List[int] = []
        self._args2: List[int] = []
        self._loops: List[LoopSpec] = []

    def fetch(self, addr: int, insts: int, taken_branches: int = 0) -> None:
        """Visit one instruction block, retiring ``insts`` instructions."""
        if insts < 1:
            raise TraceError(f"IFETCH must retire at least one instruction ({insts})")
        self._kinds.append(IFETCH)
        self._addrs.append(block_addr(addr))
        self._args.append(insts)
        self._args2.append(taken_branches)

    def load(self, addr: int, count: int = 1) -> None:
        """``count`` consecutive loads to one data block."""
        self._append_data(LOAD, addr, count)

    def store(self, addr: int, count: int = 1) -> None:
        """``count`` consecutive stores to one data block."""
        self._append_data(STORE, addr, count)

    def _append_data(self, kind: int, addr: int, count: int) -> None:
        if count < 1:
            raise TraceError(f"data event needs a positive count ({count})")
        self._kinds.append(kind)
        self._addrs.append(block_addr(addr))
        self._args.append(count)
        self._args2.append(0)

    def branch_site(self, pc: int, executions: int, taken_prob: float) -> None:
        """Aggregate ``executions`` dynamic branches at conditional site ``pc``."""
        if executions < 1:
            raise TraceError("branch site needs a positive execution count")
        if not 0.0 <= taken_prob <= 1.0:
            raise TraceError(f"taken probability out of range: {taken_prob}")
        self._kinds.append(BRANCH)
        self._addrs.append(pc)
        self._args.append(executions)
        self._args2.append(int(round(taken_prob * 255)))

    def loop(self, spec: LoopSpec) -> None:
        """Append a tight loop."""
        self._kinds.append(LOOP)
        self._addrs.append(spec.blocks[0])
        self._args.append(len(self._loops))
        self._args2.append(0)
        self._loops.append(spec)

    def extend_walk(self, blocks: Sequence[int], insts_per_block: int,
                    taken_branches_per_block: int = 1) -> None:
        """Visit ``blocks`` in order, a common straight-line-code idiom."""
        for addr in blocks:
            self.fetch(addr, insts_per_block, taken_branches_per_block)

    def build(self) -> InvocationTrace:
        """Freeze the builder into an immutable-ish trace."""
        return InvocationTrace(
            kinds=np.asarray(self._kinds, dtype=np.uint8),
            addrs=np.asarray(self._addrs, dtype=np.int64),
            args=np.asarray(self._args, dtype=np.int64),
            args2=np.asarray(self._args2, dtype=np.int64),
            loops=list(self._loops),
        )

    def __len__(self) -> int:
        return len(self._kinds)
