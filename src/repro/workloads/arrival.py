"""Invocation inter-arrival-time (IAT) processes.

Sec. 2.1/2.2: fewer than 5% of invocations to warm instances arrive less
than one second apart; the vast majority of IATs lie between one second and
a few minutes (Shahrad et al.'s Azure study).  These processes drive the
server-level interleaving model and the Fig. 1 IAT sweep.

All times are in **milliseconds**.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Iterator, Optional

import numpy as np

from repro.errors import ConfigurationError


class ArrivalProcess(ABC):
    """Generator of invocation inter-arrival times."""

    @abstractmethod
    def next_iat(self) -> float:
        """Return the next inter-arrival time in milliseconds."""

    @property
    @abstractmethod
    def mean_iat(self) -> float:
        """The process's mean IAT in milliseconds."""

    def arrivals(self, until_ms: float, start_ms: float = 0.0) -> Iterator[float]:
        """Yield absolute arrival times up to ``until_ms``."""
        t = start_ms
        while True:
            t += self.next_iat()
            if t > until_ms:
                return
            yield t


class FixedIAT(ArrivalProcess):
    """Deterministic arrivals (the Fig. 1 function-under-test driver)."""

    def __init__(self, iat_ms: float) -> None:
        if iat_ms <= 0:
            raise ConfigurationError(f"IAT must be positive, got {iat_ms}")
        self._iat = float(iat_ms)

    def next_iat(self) -> float:
        return self._iat

    @property
    def mean_iat(self) -> float:
        return self._iat


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals with the given rate."""

    def __init__(self, mean_iat_ms: float, seed: int = 0) -> None:
        if mean_iat_ms <= 0:
            raise ConfigurationError(f"mean IAT must be positive: {mean_iat_ms}")
        self._mean = float(mean_iat_ms)
        self._rng = np.random.default_rng(seed)

    def next_iat(self) -> float:
        return float(self._rng.exponential(self._mean))

    @property
    def mean_iat(self) -> float:
        return self._mean


class LognormalArrivals(ArrivalProcess):
    """Heavy-tailed arrivals; production IAT distributions are closer to
    lognormal than exponential (bursts plus long quiet periods)."""

    def __init__(self, mean_iat_ms: float, sigma: float = 1.0,
                 seed: int = 0) -> None:
        if mean_iat_ms <= 0:
            raise ConfigurationError(f"mean IAT must be positive: {mean_iat_ms}")
        if sigma <= 0:
            raise ConfigurationError(f"sigma must be positive: {sigma}")
        self._mean = float(mean_iat_ms)
        self._sigma = float(sigma)
        # Choose mu so the distribution mean equals mean_iat_ms.
        self._mu = math.log(mean_iat_ms) - sigma * sigma / 2.0
        self._rng = np.random.default_rng(seed)

    def next_iat(self) -> float:
        return float(self._rng.lognormal(self._mu, self._sigma))

    @property
    def mean_iat(self) -> float:
        return self._mean


def make_arrival_process(kind: str, mean_iat_ms: float,
                         seed: int = 0,
                         sigma: Optional[float] = None) -> ArrivalProcess:
    """Factory used by the server experiments and CLI."""
    if kind == "fixed":
        return FixedIAT(mean_iat_ms)
    if kind == "poisson":
        return PoissonArrivals(mean_iat_ms, seed=seed)
    if kind == "lognormal":
        return LognormalArrivals(mean_iat_ms, sigma=sigma or 1.0, seed=seed)
    raise ConfigurationError(
        f"unknown arrival kind {kind!r}; expected fixed|poisson|lognormal"
    )
