"""Invocation inter-arrival-time (IAT) processes.

Sec. 2.1/2.2: fewer than 5% of invocations to warm instances arrive less
than one second apart; the vast majority of IATs lie between one second and
a few minutes (Shahrad et al.'s Azure study).  These processes drive the
server-level interleaving model and the Fig. 1 IAT sweep.

All times are in **milliseconds**.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Iterator, Optional

import numpy as np

from repro.errors import ConfigurationError


class ArrivalProcess(ABC):
    """Generator of invocation inter-arrival times."""

    @abstractmethod
    def next_iat(self) -> float:
        """Return the next inter-arrival time in milliseconds."""

    @property
    @abstractmethod
    def mean_iat(self) -> float:
        """The process's mean IAT in milliseconds."""

    def arrivals(self, until_ms: float, start_ms: float = 0.0) -> Iterator[float]:
        """Yield absolute arrival times up to ``until_ms``."""
        t = start_ms
        while True:
            t += self.next_iat()
            if t > until_ms:
                return
            yield t


class FixedIAT(ArrivalProcess):
    """Deterministic arrivals (the Fig. 1 function-under-test driver)."""

    def __init__(self, iat_ms: float) -> None:
        if iat_ms <= 0:
            raise ConfigurationError(f"IAT must be positive, got {iat_ms}")
        self._iat = float(iat_ms)

    def next_iat(self) -> float:
        return self._iat

    @property
    def mean_iat(self) -> float:
        return self._iat


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals with the given rate."""

    def __init__(self, mean_iat_ms: float, seed: int = 0) -> None:
        if mean_iat_ms <= 0:
            raise ConfigurationError(f"mean IAT must be positive: {mean_iat_ms}")
        self._mean = float(mean_iat_ms)
        self._rng = np.random.default_rng(seed)

    def next_iat(self) -> float:
        return float(self._rng.exponential(self._mean))

    @property
    def mean_iat(self) -> float:
        return self._mean


class LognormalArrivals(ArrivalProcess):
    """Heavy-tailed arrivals; production IAT distributions are closer to
    lognormal than exponential (bursts plus long quiet periods)."""

    def __init__(self, mean_iat_ms: float, sigma: float = 1.0,
                 seed: int = 0) -> None:
        if mean_iat_ms <= 0:
            raise ConfigurationError(f"mean IAT must be positive: {mean_iat_ms}")
        if sigma <= 0:
            raise ConfigurationError(f"sigma must be positive: {sigma}")
        self._mean = float(mean_iat_ms)
        self._sigma = float(sigma)
        # Choose mu so the distribution mean equals mean_iat_ms.
        self._mu = math.log(mean_iat_ms) - sigma * sigma / 2.0
        self._rng = np.random.default_rng(seed)

    def next_iat(self) -> float:
        return float(self._rng.lognormal(self._mu, self._sigma))

    @property
    def mean_iat(self) -> float:
        return self._mean


class BurstyArrivals(ArrivalProcess):
    """Two-state Markov-modulated arrivals: bursts and quiet stretches.

    The process alternates between a *burst* state (IATs drawn with mean
    ``mean_iat_ms / burst_factor``) and an *idle* state (mean chosen so
    the stationary overall mean stays ``mean_iat_ms``); the state flips
    with probability ``switch_prob`` before each draw.  With symmetric
    switching the two states are visited equally often, so the idle mean
    is ``2*mean - mean/burst_factor``.  Models the on/off invocation
    trains of production serverless traffic better than a memoryless
    process while staying fully seeded.
    """

    def __init__(self, mean_iat_ms: float, burst_factor: float = 8.0,
                 switch_prob: float = 0.05, seed: int = 0) -> None:
        if mean_iat_ms <= 0:
            raise ConfigurationError(f"mean IAT must be positive: {mean_iat_ms}")
        if burst_factor <= 1.0:
            raise ConfigurationError(
                f"burst_factor must be > 1, got {burst_factor}")
        if not 0.0 < switch_prob <= 1.0:
            raise ConfigurationError(
                f"switch_prob must be in (0, 1], got {switch_prob}")
        self._mean = float(mean_iat_ms)
        self._burst_mean = self._mean / float(burst_factor)
        self._idle_mean = 2.0 * self._mean - self._burst_mean
        self._switch_prob = float(switch_prob)
        self._in_burst = True
        self._rng = np.random.default_rng(seed)

    def next_iat(self) -> float:
        if self._rng.random() < self._switch_prob:
            self._in_burst = not self._in_burst
        mean = self._burst_mean if self._in_burst else self._idle_mean
        return float(self._rng.exponential(mean))

    @property
    def mean_iat(self) -> float:
        return self._mean


class DiurnalArrivals(ArrivalProcess):
    """Nonhomogeneous arrivals tracking a day/night load cycle.

    The instantaneous rate is modulated sinusoidally around the base
    rate: at internal time ``t`` the mean IAT is ``mean_iat_ms / (1 +
    amplitude * sin(2*pi*t/period_ms + phase))``.  The process tracks
    its own cumulative simulated time, so the stream is a pure function
    of (seed, parameters).  ``mean_iat`` reports the base (cycle-
    average) mean; the realized sample mean is slightly below it because
    high-rate phases contribute more draws.
    """

    def __init__(self, mean_iat_ms: float, amplitude: float = 0.6,
                 period_ms: float = 86_400_000.0, phase: float = 0.0,
                 seed: int = 0) -> None:
        if mean_iat_ms <= 0:
            raise ConfigurationError(f"mean IAT must be positive: {mean_iat_ms}")
        if not 0.0 <= amplitude < 1.0:
            raise ConfigurationError(
                f"amplitude must be in [0, 1), got {amplitude}")
        if period_ms <= 0:
            raise ConfigurationError(
                f"period_ms must be positive, got {period_ms}")
        self._mean = float(mean_iat_ms)
        self._amplitude = float(amplitude)
        self._period = float(period_ms)
        self._phase = float(phase)
        self._t = 0.0
        self._rng = np.random.default_rng(seed)

    def next_iat(self) -> float:
        modulation = 1.0 + self._amplitude * math.sin(
            2.0 * math.pi * self._t / self._period + self._phase)
        iat = float(self._rng.exponential(self._mean / modulation))
        self._t += iat
        return iat

    @property
    def mean_iat(self) -> float:
        return self._mean


#: Arrival kinds accepted by :func:`make_arrival_process` (and by the
#: fleet's ``arrival`` axis).
ARRIVAL_KINDS = ("fixed", "poisson", "lognormal", "bursty", "diurnal")


def make_arrival_process(kind: str, mean_iat_ms: float,
                         seed: int = 0,
                         sigma: Optional[float] = None,
                         burst_factor: float = 8.0,
                         switch_prob: float = 0.05,
                         amplitude: float = 0.6,
                         period_ms: float = 86_400_000.0,
                         phase: float = 0.0) -> ArrivalProcess:
    """Factory used by the server experiments, the fleet, and the CLI."""
    if kind == "fixed":
        return FixedIAT(mean_iat_ms)
    if kind == "poisson":
        return PoissonArrivals(mean_iat_ms, seed=seed)
    if kind == "lognormal":
        return LognormalArrivals(mean_iat_ms, sigma=sigma or 1.0, seed=seed)
    if kind == "bursty":
        return BurstyArrivals(mean_iat_ms, burst_factor=burst_factor,
                              switch_prob=switch_prob, seed=seed)
    if kind == "diurnal":
        return DiurnalArrivals(mean_iat_ms, amplitude=amplitude,
                               period_ms=period_ms, phase=phase, seed=seed)
    raise ConfigurationError(
        f"unknown arrival kind {kind!r}; expected "
        f"{'|'.join(ARRIVAL_KINDS)}"
    )
