"""Shared drivers for the per-figure/table experiments.

Every evaluation experiment follows the paper's protocol (Secs. 4.2, 5.2):
a function instance is invoked repeatedly; the first ``warmup`` invocations
establish steady state (the gem5 checkpoint + first recorded metadata) and
the remaining invocations are measured.  The standard configurations live
in the :data:`CONFIGS` registry (name -> builder) and are dispatched by
:func:`run_config`, which is also what :mod:`repro.engine` workers invoke:

* **reference**  -- back-to-back invocations with warm state;
* **baseline**   -- all microarchitectural state flushed between
  invocations (the lukewarm/interleaved baseline);
* **jukebox**    -- the baseline plus Jukebox record/replay;
* **perfect**    -- the baseline with an infinite magic I-cache that
  persists across invocations (upper bound);
* **pif**        -- the baseline plus the PIF prefetcher (``params=`` and
  ``with_jukebox=`` options cover the PIF-ideal and combined variants).

Experiment modules may register additional configs with
:func:`register_config` (e.g. ``contended`` in ``fig01_iat``); an engine
:class:`~repro.engine.job.Job` names its registering module as the
``provider`` so worker processes can resolve it.

The historical ``run_reference``/``run_baseline``/``run_jukebox``/
``run_perfect_icache``/``run_pif`` entry points survive as deprecated thin
wrappers over :func:`run_config`.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field, replace as _dc_replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.jukebox import Jukebox, JukeboxInvocationReport
from repro.core.pif import PIF, PIFParams
from repro.errors import ConfigurationError
from repro.sim.core import BACKENDS, InvocationResult, Simulator
from repro.sim.params import MachineParams
from repro.sim.simulate import simulate
from repro.workloads.function import FunctionModel
from repro.workloads.profiles import FunctionProfile
from repro.workloads.trace import InvocationTrace


@dataclass(frozen=True)
class RunConfig:
    """Controls experiment scale.

    ``instruction_scale`` shrinks per-invocation instruction counts (reuse
    depth) without changing footprints; benchmarks use ``fast()`` to keep
    wall-clock time low while preserving every result's shape.

    ``backend`` selects the simulation backend (``"columnar"`` or
    ``"scalar"``).  Both are bit-identical by contract, so the choice only
    affects throughput -- but it is still part of the cache identity (see
    :meth:`repro.engine.job.Job.key`) because the equivalence is *enforced*,
    not assumed.
    """

    invocations: int = 7
    warmup: int = 2
    seed: int = 1
    instruction_scale: float = 1.0
    backend: str = "columnar"

    def __post_init__(self) -> None:
        if self.invocations <= self.warmup:
            raise ConfigurationError(
                f"need more invocations ({self.invocations}) than warmup "
                f"({self.warmup})"
            )
        if self.instruction_scale <= 0:
            raise ConfigurationError(
                f"instruction_scale must be > 0, got {self.instruction_scale}"
            )
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown simulation backend {self.backend!r}; "
                f"expected one of {', '.join(BACKENDS)}"
            )

    def replace(self, **kwargs: Any) -> "RunConfig":
        """A copy with ``kwargs`` overridden, re-validated by __post_init__."""
        return _dc_replace(self, **kwargs)

    @staticmethod
    def fast() -> "RunConfig":
        """Reduced-scale configuration for benchmarks and tests."""
        return RunConfig(invocations=4, warmup=1, instruction_scale=0.35)

    @staticmethod
    def full() -> "RunConfig":
        """Full-scale configuration for EXPERIMENTS.md numbers."""
        return RunConfig(invocations=8, warmup=2, instruction_scale=1.0)


@dataclass
class SequenceResult:
    """Measured invocations of one configuration plus Jukebox reports."""

    results: List[InvocationResult]
    jukebox_reports: List[JukeboxInvocationReport] = field(default_factory=list)

    @property
    def cycles(self) -> float:
        return sum(r.cycles for r in self.results)

    @property
    def instructions(self) -> int:
        return sum(r.instructions for r in self.results)

    @property
    def cpi(self) -> float:
        return self.cycles / max(1, self.instructions)

    def mean_mpki(self, level: str, kind: str = "all") -> float:
        if not self.results:
            return 0.0
        return sum(r.mpki(level, kind) for r in self.results) / len(self.results)


def make_model(profile: FunctionProfile, cfg: RunConfig) -> FunctionModel:
    """Build the (possibly scaled) trace generator for one function."""
    if not math.isclose(cfg.instruction_scale, 1.0, rel_tol=1e-12):
        profile = profile.scaled(cfg.instruction_scale)
    return FunctionModel(profile, seed=cfg.seed)


def make_traces(profile: FunctionProfile, cfg: RunConfig) -> List[InvocationTrace]:
    model = make_model(profile, cfg)
    return [model.invocation_trace(i) for i in range(cfg.invocations)]


def _measure(sim: Simulator, traces: List[InvocationTrace], cfg: RunConfig,
             flush: bool, jukebox: Optional[Jukebox] = None,
             pif: Optional[PIF] = None) -> SequenceResult:
    measured: List[InvocationResult] = []
    reports: List[JukeboxInvocationReport] = []
    for i, trace in enumerate(traces):
        if flush:
            sim.flush_microarch_state()
            if pif is not None:
                pif.flush()
        if jukebox is not None:
            jukebox.begin_invocation(sim.hierarchy)
        result = simulate(trace, sim=sim)
        if jukebox is not None:
            report = jukebox.end_invocation(sim.hierarchy, result)
            if i >= cfg.warmup:
                reports.append(report)
        if i >= cfg.warmup:
            measured.append(result)
    return SequenceResult(results=measured, jukebox_reports=reports)


# ---------------------------------------------------------------------------
# The config registry: name -> builder, dispatched by run_config().

#: A builder computes one simulation cell: (profile, machine, cfg, **opts).
ConfigBuilder = Callable[..., Any]

CONFIGS: Dict[str, ConfigBuilder] = {}


def register_config(name: str) -> Callable[[ConfigBuilder], ConfigBuilder]:
    """Register a config builder under ``name`` (decorator).

    Names are global across the process -- an engine
    :class:`~repro.engine.job.Job` carries only the name plus its provider
    module -- so double registration is a configuration error.
    """
    def decorator(builder: ConfigBuilder) -> ConfigBuilder:
        existing = CONFIGS.get(name)
        if existing is not None and existing is not builder:
            raise ConfigurationError(
                f"config {name!r} already registered by "
                f"{existing.__module__}.{existing.__qualname__}"
            )
        CONFIGS[name] = builder
        return builder
    return decorator


def config_names() -> Tuple[str, ...]:
    """The currently registered config names, sorted."""
    return tuple(sorted(CONFIGS))


def run_config(profile: FunctionProfile, machine: Optional[MachineParams],
               cfg: RunConfig, config: str, **opts: Any) -> Any:
    """Run one simulation cell: dispatch ``config`` through the registry.

    This is the single entry point behind both the deprecated ``run_*``
    wrappers and :func:`repro.engine.executors.execute_job`.
    """
    try:
        builder = CONFIGS[config]
    except KeyError:
        raise ConfigurationError(
            f"unknown config {config!r}; registered: "
            f"{', '.join(config_names())}"
        ) from None
    return builder(profile, machine, cfg, **opts)


@register_config("reference")
def _build_reference(profile: FunctionProfile, machine: MachineParams,
                     cfg: RunConfig) -> SequenceResult:
    """Back-to-back warm invocations on an otherwise idle core."""
    sim = Simulator(machine, backend=cfg.backend)
    return _measure(sim, make_traces(profile, cfg), cfg, flush=False)


@register_config("baseline")
def _build_baseline(profile: FunctionProfile, machine: MachineParams,
                    cfg: RunConfig) -> SequenceResult:
    """The lukewarm baseline: full state flush between invocations."""
    sim = Simulator(machine, backend=cfg.backend)
    return _measure(sim, make_traces(profile, cfg), cfg, flush=True)


@register_config("jukebox")
def _build_jukebox(profile: FunctionProfile, machine: MachineParams,
                   cfg: RunConfig) -> SequenceResult:
    """Baseline plus Jukebox record/replay."""
    sim = Simulator(machine, backend=cfg.backend)
    jukebox = Jukebox(machine.jukebox)
    return _measure(sim, make_traces(profile, cfg), cfg, flush=True,
                    jukebox=jukebox)


@register_config("perfect")
def _build_perfect_icache(profile: FunctionProfile, machine: MachineParams,
                          cfg: RunConfig) -> SequenceResult:
    """Baseline with an infinite, flush-surviving L1-I (upper bound)."""
    sim = Simulator(machine, backend=cfg.backend)
    sim.hierarchy.perfect_icache = True
    return _measure(sim, make_traces(profile, cfg), cfg, flush=True)


@register_config("pif")
def _build_pif(profile: FunctionProfile, machine: MachineParams,
               cfg: RunConfig, params: Optional[PIFParams] = None,
               with_jukebox: bool = False) -> SequenceResult:
    """Baseline plus PIF (optionally combined with Jukebox, Fig. 13)."""
    params = params if params is not None else PIFParams()
    sim = Simulator(machine, backend=cfg.backend)
    pif = PIF(params, sim.hierarchy)
    if not with_jukebox:
        sim.hierarchy.record_hook = pif
        return _measure(sim, make_traces(profile, cfg), cfg, flush=True,
                        pif=pif)
    # Combined JB + PIF: PIF observes fetches through a forwarding hook
    # while Jukebox owns the L2-miss record stream.
    jukebox = Jukebox(machine.jukebox)
    traces = make_traces(profile, cfg)
    measured: List[InvocationResult] = []
    reports: List[JukeboxInvocationReport] = []
    for i, trace in enumerate(traces):
        sim.flush_microarch_state()
        pif.flush()
        jukebox.begin_invocation(sim.hierarchy)
        jb_recorder = sim.hierarchy.record_hook
        sim.hierarchy.record_hook = _TeeHook(jb_recorder, pif)
        result = simulate(trace, sim=sim)
        sim.hierarchy.record_hook = jb_recorder
        report = jukebox.end_invocation(sim.hierarchy, result)
        if i >= cfg.warmup:
            measured.append(result)
            reports.append(report)
    return SequenceResult(results=measured, jukebox_reports=reports)


class _TeeHook:
    """Forward record-hook events to two consumers (JB + PIF combo)."""

    def __init__(self, first, second) -> None:
        self._hooks = [h for h in (first, second) if h is not None]

    def on_fetch(self, vaddr: int, cycle: float) -> None:
        for hook in self._hooks:
            hook.on_fetch(vaddr, cycle)

    def on_l2_inst_miss(self, vaddr: int, cycle: float) -> None:
        for hook in self._hooks:
            hook.on_l2_inst_miss(vaddr, cycle)


# ---------------------------------------------------------------------------
# Deprecated closure-style entry points (pre-engine API).

def _deprecation_message(old_name: str, config: str) -> str:
    return (f"{old_name}() is deprecated; use "
            f"run_config(profile, machine, cfg, {config!r}) or submit a "
            f"repro.engine Job")


# Each wrapper calls warnings.warn() itself with a literal stacklevel=2,
# so the warning is attributed to the *caller's* line -- the place that
# actually needs migrating -- rather than to a shared helper frame.

def run_reference(profile: FunctionProfile, machine: MachineParams,
                  cfg: RunConfig) -> SequenceResult:
    """Deprecated: use ``run_config(profile, machine, cfg, "reference")``."""
    warnings.warn(_deprecation_message("run_reference", "reference"),
                  DeprecationWarning, stacklevel=2)
    return run_config(profile, machine, cfg, "reference")


def run_baseline(profile: FunctionProfile, machine: MachineParams,
                 cfg: RunConfig) -> SequenceResult:
    """Deprecated: use ``run_config(profile, machine, cfg, "baseline")``."""
    warnings.warn(_deprecation_message("run_baseline", "baseline"),
                  DeprecationWarning, stacklevel=2)
    return run_config(profile, machine, cfg, "baseline")


def run_jukebox(profile: FunctionProfile, machine: MachineParams,
                cfg: RunConfig) -> SequenceResult:
    """Deprecated: use ``run_config(profile, machine, cfg, "jukebox")``."""
    warnings.warn(_deprecation_message("run_jukebox", "jukebox"),
                  DeprecationWarning, stacklevel=2)
    return run_config(profile, machine, cfg, "jukebox")


def run_perfect_icache(profile: FunctionProfile, machine: MachineParams,
                       cfg: RunConfig) -> SequenceResult:
    """Deprecated: use ``run_config(profile, machine, cfg, "perfect")``."""
    warnings.warn(_deprecation_message("run_perfect_icache", "perfect"),
                  DeprecationWarning, stacklevel=2)
    return run_config(profile, machine, cfg, "perfect")


def run_pif(profile: FunctionProfile, machine: MachineParams, cfg: RunConfig,
            params: PIFParams,
            with_jukebox: bool = False) -> SequenceResult:
    """Deprecated: use ``run_config(..., "pif", params=..., with_jukebox=...)``."""
    warnings.warn(_deprecation_message("run_pif", "pif"),
                  DeprecationWarning, stacklevel=2)
    return run_config(profile, machine, cfg, "pif", params=params,
                      with_jukebox=with_jukebox)


def run_all_configs(profile: FunctionProfile, machine: MachineParams,
                    cfg: RunConfig) -> Dict[str, SequenceResult]:
    """Reference, baseline, Jukebox and perfect-I$ for one function."""
    return {name: run_config(profile, machine, cfg, name)
            for name in ("reference", "baseline", "jukebox", "perfect")}
