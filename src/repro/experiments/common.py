"""Shared drivers for the per-figure/table experiments.

Every evaluation experiment follows the paper's protocol (Secs. 4.2, 5.2):
a function instance is invoked repeatedly; the first ``warmup`` invocations
establish steady state (the gem5 checkpoint + first recorded metadata) and
the remaining invocations are measured.  The three standard configurations:

* **reference**  -- back-to-back invocations with warm state;
* **baseline**   -- all microarchitectural state flushed between
  invocations (the lukewarm/interleaved baseline);
* **jukebox**    -- the baseline plus Jukebox record/replay;
* **perfect**    -- the baseline with an infinite magic I-cache that
  persists across invocations (upper bound);
* **pif** / **pif-ideal** -- the baseline plus the PIF prefetcher.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.jukebox import Jukebox, JukeboxInvocationReport
from repro.core.pif import PIF, PIFParams
from repro.errors import ConfigurationError
from repro.sim.core import InvocationResult, LukewarmCore
from repro.sim.params import MachineParams
from repro.workloads.function import FunctionModel
from repro.workloads.profiles import FunctionProfile
from repro.workloads.trace import InvocationTrace


@dataclass(frozen=True)
class RunConfig:
    """Controls experiment scale.

    ``instruction_scale`` shrinks per-invocation instruction counts (reuse
    depth) without changing footprints; benchmarks use ``fast()`` to keep
    wall-clock time low while preserving every result's shape.
    """

    invocations: int = 7
    warmup: int = 2
    seed: int = 1
    instruction_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.invocations <= self.warmup:
            raise ConfigurationError(
                f"need more invocations ({self.invocations}) than warmup "
                f"({self.warmup})"
            )

    @staticmethod
    def fast() -> "RunConfig":
        """Reduced-scale configuration for benchmarks and tests."""
        return RunConfig(invocations=4, warmup=1, instruction_scale=0.35)

    @staticmethod
    def full() -> "RunConfig":
        """Full-scale configuration for EXPERIMENTS.md numbers."""
        return RunConfig(invocations=8, warmup=2, instruction_scale=1.0)


@dataclass
class SequenceResult:
    """Measured invocations of one configuration plus Jukebox reports."""

    results: List[InvocationResult]
    jukebox_reports: List[JukeboxInvocationReport] = field(default_factory=list)

    @property
    def cycles(self) -> float:
        return sum(r.cycles for r in self.results)

    @property
    def instructions(self) -> int:
        return sum(r.instructions for r in self.results)

    @property
    def cpi(self) -> float:
        return self.cycles / max(1, self.instructions)

    def mean_mpki(self, level: str, kind: str = "all") -> float:
        if not self.results:
            return 0.0
        return sum(r.mpki(level, kind) for r in self.results) / len(self.results)


def make_model(profile: FunctionProfile, cfg: RunConfig) -> FunctionModel:
    """Build the (possibly scaled) trace generator for one function."""
    if not math.isclose(cfg.instruction_scale, 1.0, rel_tol=1e-12):
        profile = profile.scaled(cfg.instruction_scale)
    return FunctionModel(profile, seed=cfg.seed)


def make_traces(profile: FunctionProfile, cfg: RunConfig) -> List[InvocationTrace]:
    model = make_model(profile, cfg)
    return [model.invocation_trace(i) for i in range(cfg.invocations)]


def _measure(core: LukewarmCore, traces: List[InvocationTrace], cfg: RunConfig,
             flush: bool, jukebox: Optional[Jukebox] = None,
             pif: Optional[PIF] = None) -> SequenceResult:
    measured: List[InvocationResult] = []
    reports: List[JukeboxInvocationReport] = []
    for i, trace in enumerate(traces):
        if flush:
            core.flush_microarch_state()
            if pif is not None:
                pif.flush()
        if jukebox is not None:
            jukebox.begin_invocation(core.hierarchy)
        result = core.run(trace)
        if jukebox is not None:
            report = jukebox.end_invocation(core.hierarchy, result)
            if i >= cfg.warmup:
                reports.append(report)
        if i >= cfg.warmup:
            measured.append(result)
    return SequenceResult(results=measured, jukebox_reports=reports)


def run_reference(profile: FunctionProfile, machine: MachineParams,
                  cfg: RunConfig) -> SequenceResult:
    """Back-to-back warm invocations on an otherwise idle core."""
    core = LukewarmCore(machine)
    return _measure(core, make_traces(profile, cfg), cfg, flush=False)


def run_baseline(profile: FunctionProfile, machine: MachineParams,
                 cfg: RunConfig) -> SequenceResult:
    """The lukewarm baseline: full state flush between invocations."""
    core = LukewarmCore(machine)
    return _measure(core, make_traces(profile, cfg), cfg, flush=True)


def run_jukebox(profile: FunctionProfile, machine: MachineParams,
                cfg: RunConfig) -> SequenceResult:
    """Baseline plus Jukebox record/replay."""
    core = LukewarmCore(machine)
    jukebox = Jukebox(machine.jukebox)
    return _measure(core, make_traces(profile, cfg), cfg, flush=True,
                    jukebox=jukebox)


def run_perfect_icache(profile: FunctionProfile, machine: MachineParams,
                       cfg: RunConfig) -> SequenceResult:
    """Baseline with an infinite, flush-surviving L1-I (upper bound)."""
    core = LukewarmCore(machine)
    core.hierarchy.perfect_icache = True
    return _measure(core, make_traces(profile, cfg), cfg, flush=True)


def run_pif(profile: FunctionProfile, machine: MachineParams, cfg: RunConfig,
            params: PIFParams,
            with_jukebox: bool = False) -> SequenceResult:
    """Baseline plus PIF (optionally combined with Jukebox, Fig. 13)."""
    core = LukewarmCore(machine)
    pif = PIF(params, core.hierarchy)
    if not with_jukebox:
        core.hierarchy.record_hook = pif
        return _measure(core, make_traces(profile, cfg), cfg, flush=True,
                        pif=pif)
    # Combined JB + PIF: PIF observes fetches through a forwarding hook
    # while Jukebox owns the L2-miss record stream.
    jukebox = Jukebox(machine.jukebox)
    traces = make_traces(profile, cfg)
    measured: List[InvocationResult] = []
    reports: List[JukeboxInvocationReport] = []
    for i, trace in enumerate(traces):
        core.flush_microarch_state()
        pif.flush()
        jukebox.begin_invocation(core.hierarchy)
        jb_recorder = core.hierarchy.record_hook
        core.hierarchy.record_hook = _TeeHook(jb_recorder, pif)
        result = core.run(trace)
        core.hierarchy.record_hook = jb_recorder
        report = jukebox.end_invocation(core.hierarchy, result)
        if i >= cfg.warmup:
            measured.append(result)
            reports.append(report)
    return SequenceResult(results=measured, jukebox_reports=reports)


class _TeeHook:
    """Forward record-hook events to two consumers (JB + PIF combo)."""

    def __init__(self, first, second) -> None:
        self._hooks = [h for h in (first, second) if h is not None]

    def on_fetch(self, vaddr: int, cycle: float) -> None:
        for hook in self._hooks:
            hook.on_fetch(vaddr, cycle)

    def on_l2_inst_miss(self, vaddr: int, cycle: float) -> None:
        for hook in self._hooks:
            hook.on_l2_inst_miss(vaddr, cycle)


def run_all_configs(profile: FunctionProfile, machine: MachineParams,
                    cfg: RunConfig) -> Dict[str, SequenceResult]:
    """Reference, baseline, Jukebox and perfect-I$ for one function."""
    return {
        "reference": run_reference(profile, machine, cfg),
        "baseline": run_baseline(profile, machine, cfg),
        "jukebox": run_jukebox(profile, machine, cfg),
        "perfect": run_perfect_icache(profile, machine, cfg),
    }
