"""Figure 8: sensitivity of Jukebox's metadata size to the code region size.

Protocol (Sec. 5.1): record the L2 instruction-miss stream of a lukewarm
invocation through the Jukebox record logic for region sizes from 128B to
8KB and CRRB sizes of 8/16/32 entries, measuring the *unbounded* metadata
needed to hold every produced entry.  Paper headline: the metadata size is
minimized around a 1KB region size, landing between ~9.6KB and ~29.5KB
across the suite, with modest sensitivity to the CRRB size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.report import format_table
from repro.core.recorder import record_miss_stream
from repro.engine import Job, sweep
from repro.experiments.common import RunConfig, make_traces, register_config
from repro.sim.core import Simulator
from repro.sim.simulate import simulate
from repro.sim.params import JukeboxParams, MachineParams, skylake
from repro.units import KB
from repro.workloads.suite import suite_subset

DEFAULT_REGION_SIZES = (128, 256, 512, 1 * KB, 2 * KB, 4 * KB, 8 * KB)
DEFAULT_CRRB_SIZES = (8, 16, 32)

#: Registry configs this experiment sweeps (the region/CRRB grid is then
#: replayed over each recorded stream in-process -- it is pure and cheap).
SWEEP_CONFIGS = ("miss_stream",)


class _MissCollector:
    """Record hook that captures the L2 instruction-miss address stream."""

    def __init__(self) -> None:
        self.misses: List[int] = []

    def on_l2_inst_miss(self, vaddr: int, cycle: float) -> None:
        self.misses.append(vaddr)

    #: L1-hit bulk execution cannot reach on_l2_inst_miss, so the
    #: columnar backend may keep it enabled while collecting misses.
    fetch_is_noop = True

    def on_fetch(self, vaddr: int, cycle: float) -> None:
        pass


@register_config("miss_stream")
def collect_miss_stream(profile, machine: MachineParams,
                        cfg: RunConfig) -> List[int]:
    """The L2-I miss stream of one lukewarm invocation."""
    sim = Simulator(machine, backend=cfg.backend)
    traces = make_traces(profile, cfg)
    collector = _MissCollector()
    for i, trace in enumerate(traces[: cfg.warmup + 1]):
        sim.flush_microarch_state()
        if i == cfg.warmup:
            sim.hierarchy.record_hook = collector
        simulate(trace, sim=sim)
    sim.hierarchy.record_hook = None
    return collector.misses


@dataclass
class Fig8Result:
    region_sizes: List[int]
    crrb_sizes: List[int]
    #: (abbrev, crrb_entries, region_size) -> metadata bytes.
    metadata_bytes: Dict = field(default_factory=dict)
    functions: List[str] = field(default_factory=list)

    def best_region_size(self, abbrev: str, crrb: int = 16) -> int:
        return min(self.region_sizes,
                   key=lambda rs: self.metadata_bytes[(abbrev, crrb, rs)])

    def series(self, abbrev: str, crrb: int = 16) -> List[int]:
        return [self.metadata_bytes[(abbrev, crrb, rs)]
                for rs in self.region_sizes]


def run(cfg: Optional[RunConfig] = None,
        machine: Optional[MachineParams] = None,
        functions: Optional[Sequence[str]] = None,
        region_sizes: Sequence[int] = DEFAULT_REGION_SIZES,
        crrb_sizes: Sequence[int] = DEFAULT_CRRB_SIZES) -> Fig8Result:
    cfg = cfg if cfg is not None else RunConfig()
    machine = machine if machine is not None else skylake()
    result = Fig8Result(region_sizes=list(region_sizes),
                        crrb_sizes=list(crrb_sizes))
    profiles = suite_subset(list(functions) if functions else None)
    jobs = [Job.make(p, machine, cfg, "miss_stream", provider=__name__)
            for p in profiles]
    for profile, stream in zip(profiles, sweep(jobs)):
        result.functions.append(profile.abbrev)
        for crrb in crrb_sizes:
            for region_size in region_sizes:
                params = JukeboxParams(crrb_entries=crrb,
                                       region_size=region_size,
                                       metadata_bytes=machine.jukebox.metadata_bytes)
                buffer = record_miss_stream(stream, params)
                result.metadata_bytes[(profile.abbrev, crrb, region_size)] = \
                    buffer.size_bytes
    return result


def render(result: Fig8Result, crrb: int = 16) -> str:
    headers = ["Function"] + [_size_label(rs) for rs in result.region_sizes]
    rows = []
    for abbrev in result.functions:
        row: List[object] = [abbrev]
        for rs in result.region_sizes:
            row.append(f"{result.metadata_bytes[(abbrev, crrb, rs)] / KB:.1f}K")
        rows.append(row)
    return format_table(
        headers, rows,
        title=(f"Figure 8: metadata size vs. code region size "
               f"(CRRB = {crrb} entries)"))


def _size_label(nbytes: int) -> str:
    if nbytes >= KB:
        return f"{nbytes // KB}K"
    return str(nbytes)
