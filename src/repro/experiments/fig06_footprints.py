"""Figure 6: instruction footprints and cross-invocation commonality.

Protocol (Sec. 2.5): execute each function 25 times from a warm state,
trace L1-I accesses at cache-block granularity and deduplicate per
invocation.  Fig. 6a reports the footprint size distribution (expected:
~300KB to ~800KB, low variance); Fig. 6b reports the pairwise Jaccard
indices of the 25 footprints (25*24/2 = 300 pairs; expected: mean > 0.9
for all but a few functions).

This experiment operates directly on traces -- no timing model involved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.metrics import pairwise_jaccard, summarize_distribution
from repro.analysis.report import format_table
from repro.engine import Job, sweep
from repro.experiments.common import RunConfig, make_model, register_config
from repro.units import KB
from repro.workloads.suite import suite_subset

DEFAULT_INVOCATIONS = 25

#: Registry configs this experiment sweeps (trace-only, no timing model).
SWEEP_CONFIGS = ("footprints",)


@register_config("footprints")
def _build_footprints(profile, machine, cfg: RunConfig,
                      invocations: int = DEFAULT_INVOCATIONS):
    """Per-invocation instruction footprints (block sets) of one function.

    ``machine`` is ignored -- footprints depend only on the trace
    generator -- so jobs submit it as ``None``, keeping the cache key
    machine-independent.
    """
    model = make_model(profile, cfg)
    return [model.invocation_trace(i).instruction_blocks()
            for i in range(invocations)]


@dataclass
class Fig6Entry:
    abbrev: str
    footprint_bytes: Dict[str, float]
    jaccard: Dict[str, float]
    n_invocations: int
    n_pairs: int


@dataclass
class Fig6Result:
    entries: List[Fig6Entry] = field(default_factory=list)

    @property
    def mean_footprint_bytes(self) -> float:
        return (sum(e.footprint_bytes["mean"] for e in self.entries)
                / len(self.entries))

    @property
    def mean_jaccard(self) -> float:
        return sum(e.jaccard["mean"] for e in self.entries) / len(self.entries)


def run(cfg: Optional[RunConfig] = None,
        machine=None,  # unused; kept for a uniform experiment signature
        functions: Optional[Sequence[str]] = None,
        invocations: int = DEFAULT_INVOCATIONS) -> Fig6Result:
    cfg = cfg if cfg is not None else RunConfig()
    result = Fig6Result()
    profiles = suite_subset(list(functions) if functions else None)
    jobs = [Job.make(p, None, cfg, "footprints", provider=__name__,
                     invocations=invocations) for p in profiles]
    for profile, footprints in zip(profiles, sweep(jobs)):
        sizes = [len(fp) * 64.0 for fp in footprints]
        indices = pairwise_jaccard(footprints)
        result.entries.append(Fig6Entry(
            abbrev=profile.abbrev,
            footprint_bytes=summarize_distribution(sizes),
            jaccard=summarize_distribution(indices),
            n_invocations=invocations,
            n_pairs=len(indices),
        ))
    return result


def render(result: Fig6Result) -> str:
    rows_a = [[e.abbrev,
               f"{e.footprint_bytes['mean'] / KB:.0f}K",
               f"{e.footprint_bytes['min'] / KB:.0f}K",
               f"{e.footprint_bytes['max'] / KB:.0f}K"] for e in result.entries]
    rows_a.append(["MEAN", f"{result.mean_footprint_bytes / KB:.0f}K", "", ""])
    t1 = format_table(["Function", "mean", "min", "max"], rows_a,
                      title="Figure 6a: instruction footprint sizes")
    rows_b = [[e.abbrev, e.jaccard["mean"], e.jaccard["min"],
               e.jaccard["max"]] for e in result.entries]
    rows_b.append(["MEAN", result.mean_jaccard, "", ""])
    t2 = format_table(["Function", "mean", "min", "max"], rows_b,
                      title=("Figure 6b: pairwise Jaccard commonality of "
                             f"{result.entries[0].n_invocations if result.entries else 0}"
                             " invocations"))
    return f"{t1}\n\n{t2}"
