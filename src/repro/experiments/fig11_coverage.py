"""Figure 11: L2 instruction-miss coverage and overprediction.

Protocol (Sec. 5.3): fractions of the *baseline's* L2 instruction misses
that Jukebox covers, leaves uncovered, or overpredicts (prefetched but
never referenced).  Paper headlines: Go functions reach 75-90% coverage
(their metadata fits the 16KB budget); Python/NodeJS reach 48-74%; the
overprediction rate averages ~10% (max 15.8%).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.analysis.report import format_table
from repro.engine import sweep_configs
from repro.experiments.common import RunConfig
from repro.sim.params import MachineParams, skylake
from repro.workloads.profiles import LANG_GO
from repro.workloads.suite import suite_subset

#: Registry configs this experiment sweeps per function.
SWEEP_CONFIGS = ("baseline", "jukebox")


@dataclass
class Fig11Entry:
    abbrev: str
    language: str
    baseline_l2_misses: float
    covered: float
    overpredicted: float
    metadata_truncated: bool

    @property
    def covered_fraction(self) -> float:
        if self.baseline_l2_misses <= 0:
            return 0.0
        return min(1.0, self.covered / self.baseline_l2_misses)

    @property
    def uncovered_fraction(self) -> float:
        return max(0.0, 1.0 - self.covered_fraction)

    @property
    def overpredicted_fraction(self) -> float:
        if self.baseline_l2_misses <= 0:
            return 0.0
        return self.overpredicted / self.baseline_l2_misses


@dataclass
class Fig11Result:
    entries: List[Fig11Entry] = field(default_factory=list)

    def mean_coverage(self, language: Optional[str] = None) -> float:
        entries = [e for e in self.entries
                   if language is None or e.language == language]
        if not entries:
            return 0.0
        return sum(e.covered_fraction for e in entries) / len(entries)

    @property
    def mean_overprediction(self) -> float:
        return (sum(e.overpredicted_fraction for e in self.entries)
                / len(self.entries))

    @property
    def max_overprediction(self) -> float:
        return max(e.overpredicted_fraction for e in self.entries)


def run(cfg: Optional[RunConfig] = None,
        machine: Optional[MachineParams] = None,
        functions: Optional[Sequence[str]] = None) -> Fig11Result:
    cfg = cfg if cfg is not None else RunConfig()
    machine = machine if machine is not None else skylake()
    result = Fig11Result()
    profiles = suite_subset(list(functions) if functions else None)
    runs = sweep_configs(profiles, machine, cfg, SWEEP_CONFIGS)
    for profile in profiles:
        base = runs[profile.abbrev]["baseline"]
        jb = runs[profile.abbrev]["jukebox"]
        n = max(1, len(jb.jukebox_reports))
        covered = sum(r.replay.covered for r in jb.jukebox_reports) / n
        over = sum(r.replay.overpredicted for r in jb.jukebox_reports) / n
        truncated = any(r.recorded_dropped > 0 for r in jb.jukebox_reports)
        base_misses = base.results and (
            sum(r.stats.l2.inst_misses for r in base.results)
            / len(base.results)) or 0.0
        result.entries.append(Fig11Entry(
            abbrev=profile.abbrev,
            language=profile.language,
            baseline_l2_misses=base_misses,
            covered=covered,
            overpredicted=over,
            metadata_truncated=truncated,
        ))
    return result


def render(result: Fig11Result) -> str:
    rows = [[e.abbrev,
             f"{e.covered_fraction * 100:.0f}%",
             f"{e.uncovered_fraction * 100:.0f}%",
             f"{e.overpredicted_fraction * 100:.0f}%",
             "yes" if e.metadata_truncated else "no"] for e in result.entries]
    rows.append(["MEAN",
                 f"{result.mean_coverage() * 100:.0f}%", "",
                 f"{result.mean_overprediction * 100:.0f}%", ""])
    table = format_table(
        ["Function", "covered", "uncovered", "overpredicted", "truncated"],
        rows,
        title=("Figure 11: L2 instruction-miss coverage "
               "(normalized to baseline L2 misses)"))
    go_cov = result.mean_coverage(LANG_GO) * 100
    other = [e for e in result.entries if e.language != LANG_GO]
    other_cov = (sum(e.covered_fraction for e in other) / len(other) * 100
                 if other else 0.0)
    summary = (f"Go coverage {go_cov:.0f}% vs. Python/NodeJS {other_cov:.0f}% "
               f"(paper: 75-90% vs. 48-74%); overprediction mean "
               f"{result.mean_overprediction * 100:.0f}% "
               f"max {result.max_overprediction * 100:.0f}% "
               f"(paper: ~10% / 15.8%)")
    return f"{table}\n\n{summary}"
