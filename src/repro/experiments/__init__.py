"""One module per paper table/figure (see DESIGN.md Sec. 4 for the index).

Every experiment module exposes ``run(cfg, machine=None, functions=None)``
returning a structured result, plus ``render(result)`` returning the
plain-text table/series the paper reports.  ``runner`` provides the
``lukewarm-repro`` CLI over all of them.
"""

from repro.experiments.common import (
    CONFIGS,
    RunConfig,
    SequenceResult,
    config_names,
    register_config,
    run_all_configs,
    run_baseline,
    run_config,
    run_jukebox,
    run_perfect_icache,
    run_pif,
    run_reference,
)

__all__ = [
    "CONFIGS",
    "RunConfig",
    "SequenceResult",
    "config_names",
    "register_config",
    "run_all_configs",
    "run_baseline",
    "run_config",
    "run_jukebox",
    "run_perfect_icache",
    "run_pif",
    "run_reference",
]
