"""Figure 4: mean interleaved CPI normalized to the mean reference CPI.

Aggregates the Fig. 2 runs into the paper's single summary bar: the
reference CPI (striped) plus the extra cycles under interleaving (solid),
broken into *fetch latency*, *fetch bandwidth* and *rest*.  Paper headline:
fetch latency is responsible for ~56% of all extra stall cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.report import format_table
from repro.experiments import fig02_topdown
from repro.experiments.common import RunConfig
from repro.sim.params import MachineParams

#: Derived from the Fig. 2 sweep (cache hits when Fig. 2 already ran).
SWEEP_CONFIGS = fig02_topdown.SWEEP_CONFIGS


@dataclass
class Fig4Result:
    reference_cpi: float
    interleaved_cpi: float
    extra_fetch_latency: float
    extra_fetch_bandwidth: float
    extra_rest: float

    @property
    def extra_total(self) -> float:
        return (self.extra_fetch_latency + self.extra_fetch_bandwidth
                + self.extra_rest)

    @property
    def fetch_latency_share_of_extra(self) -> float:
        """The paper's 56% headline number."""
        extra = self.extra_total
        return self.extra_fetch_latency / extra if extra else 0.0

    @property
    def normalized_interleaved(self) -> float:
        return (self.interleaved_cpi / self.reference_cpi
                if self.reference_cpi else 0.0)


def from_fig2(fig2: fig02_topdown.Fig2Result) -> Fig4Result:
    ref = fig2.mean_stack("reference")
    itl = fig2.mean_stack("interleaved")
    ref_cpi = sum(ref.values())
    itl_cpi = sum(itl.values())
    extra_fl = max(0.0, itl["fetch_latency"] - ref["fetch_latency"])
    extra_fb = max(0.0, itl["fetch_bandwidth"] - ref["fetch_bandwidth"])
    extra_rest = max(0.0, (itl_cpi - ref_cpi) - extra_fl - extra_fb)
    return Fig4Result(
        reference_cpi=ref_cpi,
        interleaved_cpi=itl_cpi,
        extra_fetch_latency=extra_fl,
        extra_fetch_bandwidth=extra_fb,
        extra_rest=extra_rest,
    )


def run(cfg: Optional[RunConfig] = None,
        machine: Optional[MachineParams] = None,
        functions: Optional[Sequence[str]] = None,
        fig2: Optional[fig02_topdown.Fig2Result] = None) -> Fig4Result:
    if fig2 is None:
        fig2 = fig02_topdown.run(cfg, machine, functions)
    return from_fig2(fig2)


def render(result: Fig4Result) -> str:
    ref = result.reference_cpi
    rows = [
        ["reference CPI (striped)", "100%"],
        ["extra: fetch latency", f"{result.extra_fetch_latency / ref * 100:.0f}%"],
        ["extra: fetch bandwidth", f"{result.extra_fetch_bandwidth / ref * 100:.0f}%"],
        ["extra: rest", f"{result.extra_rest / ref * 100:.0f}%"],
        ["interleaved total", f"{result.normalized_interleaved * 100:.0f}%"],
    ]
    table = format_table(
        ["Component", "vs. reference CPI"], rows,
        title="Figure 4: mean interleaved CPI normalized to reference")
    summary = (f"Fetch latency accounts for "
               f"{result.fetch_latency_share_of_extra * 100:.0f}% of the "
               f"extra stall cycles (paper: 56%)")
    return f"{table}\n\n{summary}"
