"""Table 2: the serverless function suite and its language runtimes.

Regenerated from :data:`repro.workloads.suite.SUITE` together with the
calibrated per-function properties this reproduction assigns to each
function (footprint, instruction volume, loop-heaviness).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.report import format_table
from repro.workloads.profiles import FunctionProfile
from repro.workloads.suite import SUITE

#: No simulation cells: the table is read straight off the suite.
SWEEP_CONFIGS = ()


@dataclass
class Table2Result:
    profiles: List[FunctionProfile]

    def by_application(self) -> "dict[str, List[FunctionProfile]]":
        grouped: "dict[str, List[FunctionProfile]]" = {}
        for p in self.profiles:
            grouped.setdefault(p.application, []).append(p)
        return grouped


def run(cfg=None, machine=None, functions=None) -> Table2Result:
    return Table2Result(profiles=list(SUITE))


def render(result: Table2Result) -> str:
    rows = []
    for p in result.profiles:
        rows.append([
            p.name, p.abbrev, p.language, p.application,
            f"{p.footprint_kb}KB", f"{p.instructions // 1000}k",
            f"{p.loopiness:.2f}",
        ])
    return format_table(
        ["Function", "Abbrev", "Runtime", "Application",
         "I-footprint", "insts/invocation", "loopiness"],
        rows,
        title=("Table 2: serverless functions and their language runtimes "
               "(P: Python, N: NodeJS, G: Go)"))
