"""Figure 3: front-end stall cycles split into fetch latency vs. bandwidth.

Same runs as Fig. 2; the front-end portion of the CPI is isolated and
normalized to the *reference* front-end CPI per function.  Paper headline:
fetch-latency stalls grow by ~94% under interleaving while fetch-bandwidth
stalls grow by only ~22%.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.analysis.report import format_table
from repro.experiments import fig02_topdown
from repro.experiments.common import RunConfig
from repro.sim.params import MachineParams

#: Derived from the Fig. 2 sweep (cache hits when Fig. 2 already ran).
SWEEP_CONFIGS = fig02_topdown.SWEEP_CONFIGS


@dataclass
class Fig3Entry:
    abbrev: str
    ref_fetch_latency: float
    ref_fetch_bandwidth: float
    int_fetch_latency: float
    int_fetch_bandwidth: float

    @property
    def ref_frontend(self) -> float:
        return self.ref_fetch_latency + self.ref_fetch_bandwidth

    def normalized(self, value: float) -> float:
        """Normalize to the reference front-end CPI (the Fig. 3 y-axis)."""
        return value / self.ref_frontend if self.ref_frontend else 0.0


@dataclass
class Fig3Result:
    entries: List[Fig3Entry] = field(default_factory=list)

    @property
    def mean_latency_growth(self) -> float:
        growths = [e.int_fetch_latency / e.ref_fetch_latency - 1.0
                   for e in self.entries if e.ref_fetch_latency > 0]
        return sum(growths) / len(growths) if growths else 0.0

    @property
    def mean_bandwidth_growth(self) -> float:
        growths = [e.int_fetch_bandwidth / e.ref_fetch_bandwidth - 1.0
                   for e in self.entries if e.ref_fetch_bandwidth > 0]
        return sum(growths) / len(growths) if growths else 0.0


def from_fig2(fig2: fig02_topdown.Fig2Result) -> Fig3Result:
    """Derive the front-end split from existing Fig. 2 runs."""
    result = Fig3Result()
    for entry in fig2.entries:
        result.entries.append(Fig3Entry(
            abbrev=entry.abbrev,
            ref_fetch_latency=entry.reference["fetch_latency"],
            ref_fetch_bandwidth=entry.reference["fetch_bandwidth"],
            int_fetch_latency=entry.interleaved["fetch_latency"],
            int_fetch_bandwidth=entry.interleaved["fetch_bandwidth"],
        ))
    return result


def run(cfg: Optional[RunConfig] = None,
        machine: Optional[MachineParams] = None,
        functions: Optional[Sequence[str]] = None,
        fig2: Optional[fig02_topdown.Fig2Result] = None) -> Fig3Result:
    if fig2 is None:
        fig2 = fig02_topdown.run(cfg, machine, functions)
    return from_fig2(fig2)


def render(result: Fig3Result) -> str:
    rows = []
    for e in result.entries:
        rows.append([
            e.abbrev,
            f"{e.normalized(e.ref_fetch_latency) * 100:.0f}%",
            f"{e.normalized(e.ref_fetch_bandwidth) * 100:.0f}%",
            f"{e.normalized(e.int_fetch_latency) * 100:.0f}%",
            f"{e.normalized(e.int_fetch_bandwidth) * 100:.0f}%",
        ])
    table = format_table(
        ["Function", "ref latency", "ref bandwidth",
         "int latency", "int bandwidth"],
        rows,
        title=("Figure 3: front-end stalls, normalized to the reference "
               "front-end CPI"),
    )
    summary = (f"Mean growth under interleaving: fetch latency "
               f"{result.mean_latency_growth * 100:+.0f}% "
               f"(paper: +94%), fetch bandwidth "
               f"{result.mean_bandwidth_growth * 100:+.0f}% (paper: +22%)")
    return f"{table}\n\n{summary}"
