"""Figure 9: speedup as a function of the metadata storage budget.

Protocol (Sec. 5.1): 1KB regions, 16-entry CRRB, metadata budgets of 8, 12,
16 and 32KB; speedup over the no-Jukebox lukewarm baseline for the three
representative per-language functions (Email-P, Pay-N, ProdL-G) plus the
suite geomean.  Paper headlines: little gain beyond 16KB; functions with
large working sets (Pay-N) are the most budget-sensitive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.metrics import geomean_speedup, speedup
from repro.analysis.report import format_table
from repro.engine import Job, sweep
from repro.experiments.common import RunConfig
from repro.sim.params import JukeboxParams, MachineParams, skylake
from repro.units import KB
from repro.workloads.suite import REPRESENTATIVES, suite_subset

DEFAULT_BUDGETS = (8 * KB, 12 * KB, 16 * KB, 32 * KB)

#: Registry configs this experiment sweeps (jukebox once per budget).
SWEEP_CONFIGS = ("baseline", "jukebox")


@dataclass
class Fig9Result:
    budgets: List[int]
    #: abbrev -> budget -> speedup fraction.
    speedups: Dict[str, Dict[int, float]] = field(default_factory=dict)
    geomean: Dict[int, float] = field(default_factory=dict)
    representatives: List[str] = field(default_factory=list)

    def saturation_budget(self, threshold: float = 0.01) -> int:
        """Smallest budget within ``threshold`` of the largest budget's
        geomean speedup (paper: 16KB)."""
        best = self.geomean[max(self.budgets)]
        for budget in sorted(self.budgets):
            if self.geomean[budget] >= best - threshold:
                return budget
        return max(self.budgets)


def run(cfg: Optional[RunConfig] = None,
        machine: Optional[MachineParams] = None,
        functions: Optional[Sequence[str]] = None,
        budgets: Sequence[int] = DEFAULT_BUDGETS) -> Fig9Result:
    cfg = cfg if cfg is not None else RunConfig()
    machine = machine if machine is not None else skylake()
    profiles = suite_subset(list(functions) if functions else None)
    result = Fig9Result(budgets=list(budgets),
                        representatives=[a for a in REPRESENTATIVES
                                         if any(p.abbrev == a for p in profiles)])

    # One flat job list -- baselines plus every (budget x function) cell --
    # so a parallel executor sees the whole frontier at once.
    machines = {
        budget: machine.with_jukebox(JukeboxParams(
            crrb_entries=machine.jukebox.crrb_entries,
            region_size=machine.jukebox.region_size,
            metadata_bytes=budget,
        ))
        for budget in budgets
    }
    jobs = [Job.make(p, machine, cfg, "baseline") for p in profiles]
    jobs += [Job.make(p, machines[budget], cfg, "jukebox")
             for budget in budgets for p in profiles]
    runs = iter(sweep(jobs))
    base_cycles: Dict[str, float] = {
        p.abbrev: next(runs).cycles for p in profiles}
    for budget in budgets:
        per_fn: List[float] = []
        for profile in profiles:
            s = speedup(base_cycles[profile.abbrev], next(runs).cycles)
            result.speedups.setdefault(profile.abbrev, {})[budget] = s
            per_fn.append(s)
        result.geomean[budget] = geomean_speedup(per_fn)
    return result


def render(result: Fig9Result) -> str:
    shown = result.representatives or list(result.speedups)[:3]
    headers = ["Budget"] + shown + ["GEOMEAN"]
    rows = []
    for budget in result.budgets:
        row: List[object] = [f"{budget // KB}KB"]
        for abbrev in shown:
            row.append(f"{result.speedups[abbrev][budget] * 100:+.1f}%")
        row.append(f"{result.geomean[budget] * 100:+.1f}%")
        rows.append(row)
    table = format_table(headers, rows,
                         title="Figure 9: speedup vs. metadata storage budget")
    summary = (f"Speedup saturates at {result.saturation_budget() // KB}KB "
               f"(paper: little gain beyond 16KB)")
    return f"{table}\n\n{summary}"
