"""Figure 12: Jukebox's memory-bandwidth overhead.

Protocol (Sec. 5.4): total DRAM traffic of the Jukebox configuration
normalized to the baseline.  Correct timely prefetches replace demand
fetches one-for-one, so the overhead consists of overpredicted prefetch
lines plus metadata record/replay traffic.  Paper headlines: +14% average
(+23% worst case), composed of ~40% metadata and ~60% overprediction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.analysis.report import format_table
from repro.engine import sweep_configs
from repro.experiments.common import RunConfig
from repro.sim.params import MachineParams, skylake
from repro.sim.stats import MemoryTraffic
from repro.workloads.suite import suite_subset

#: Registry configs this experiment sweeps per function.
SWEEP_CONFIGS = ("baseline", "jukebox")


@dataclass
class Fig12Entry:
    abbrev: str
    baseline_bytes: float
    overpredicted_bytes: float
    metadata_record_bytes: float
    metadata_replay_bytes: float

    @property
    def overhead_bytes(self) -> float:
        return (self.overpredicted_bytes + self.metadata_record_bytes
                + self.metadata_replay_bytes)

    @property
    def overhead_fraction(self) -> float:
        if self.baseline_bytes <= 0:
            return 0.0
        return self.overhead_bytes / self.baseline_bytes

    @property
    def metadata_share(self) -> float:
        """Fraction of overhead due to metadata traffic (paper: ~40%)."""
        total = self.overhead_bytes
        if total <= 0:
            return 0.0
        return (self.metadata_record_bytes + self.metadata_replay_bytes) / total


@dataclass
class Fig12Result:
    entries: List[Fig12Entry] = field(default_factory=list)

    @property
    def mean_overhead(self) -> float:
        return (sum(e.overhead_fraction for e in self.entries)
                / len(self.entries))

    @property
    def max_overhead(self) -> float:
        return max(e.overhead_fraction for e in self.entries)

    @property
    def mean_metadata_share(self) -> float:
        shares = [e.metadata_share for e in self.entries if e.overhead_bytes > 0]
        return sum(shares) / len(shares) if shares else 0.0


def _sum_traffic(results) -> MemoryTraffic:
    total = MemoryTraffic()
    for r in results:
        t = r.stats.memory
        total.demand_inst += t.demand_inst
        total.demand_data += t.demand_data
        total.prefetch_useful += t.prefetch_useful
        total.prefetch_overpredicted += t.prefetch_overpredicted
        total.metadata_record += t.metadata_record
        total.metadata_replay += t.metadata_replay
    return total


def run(cfg: Optional[RunConfig] = None,
        machine: Optional[MachineParams] = None,
        functions: Optional[Sequence[str]] = None) -> Fig12Result:
    cfg = cfg if cfg is not None else RunConfig()
    machine = machine if machine is not None else skylake()
    result = Fig12Result()
    profiles = suite_subset(list(functions) if functions else None)
    runs = sweep_configs(profiles, machine, cfg, SWEEP_CONFIGS)
    for profile in profiles:
        base = runs[profile.abbrev]["baseline"]
        jb = runs[profile.abbrev]["jukebox"]
        base_traffic = _sum_traffic(base.results)
        jb_traffic = _sum_traffic(jb.results)
        # Replay traffic (prefetch fills, metadata reads) is charged at
        # invocation start, before the measured InvocationResult delta is
        # opened; recover it from the per-invocation Jukebox reports.
        prefetched_lines = sum(r.replay.lines_prefetched
                               for r in jb.jukebox_reports)
        overpredicted_lines = sum(r.replay.overpredicted
                                  for r in jb.jukebox_reports)
        replay_meta = sum(r.replay.metadata_bytes_read
                          for r in jb.jukebox_reports)
        record_meta = sum(r.recorded_bytes for r in jb.jukebox_reports)
        result.entries.append(Fig12Entry(
            abbrev=profile.abbrev,
            baseline_bytes=float(base_traffic.demand_inst
                                 + base_traffic.demand_data),
            overpredicted_bytes=overpredicted_lines * 64.0,
            metadata_record_bytes=float(record_meta),
            metadata_replay_bytes=float(replay_meta),
        ))
    return result


def render(result: Fig12Result) -> str:
    rows = []
    for e in result.entries:
        base = e.baseline_bytes or 1.0
        rows.append([
            e.abbrev,
            f"{e.overpredicted_bytes / base * 100:.1f}%",
            f"{e.metadata_record_bytes / base * 100:.1f}%",
            f"{e.metadata_replay_bytes / base * 100:.1f}%",
            f"{e.overhead_fraction * 100:.1f}%",
        ])
    rows.append(["MEAN", "", "", "", f"{result.mean_overhead * 100:.1f}%"])
    table = format_table(
        ["Function", "overpredicted", "meta record", "meta replay", "total"],
        rows,
        title="Figure 12: memory-bandwidth overhead vs. baseline traffic")
    summary = (f"Mean overhead {result.mean_overhead * 100:.1f}% "
               f"(paper: 14%), worst case {result.max_overhead * 100:.1f}% "
               f"(paper: 23%); metadata share of overhead "
               f"{result.mean_metadata_share * 100:.0f}% (paper: ~40%)")
    return f"{table}\n\n{summary}"
