"""Extension: the cold→lukewarm→warm invocation-frequency spectrum.

The paper characterizes the *lukewarm* point only.  This experiment
sweeps the whole axis: per (function, variant, IAT) cell it reports the
end-to-end invocation latency decomposed into library initialization
(ColdSpy axis), snapshot page faults (REAP axis) and microarchitectural
misses (the paper's axis), so the fig01-style curve shows where each
optimization pays off:

* **warm** (``iat == 0``) -- back-to-back invocations, state retained:
  exactly the registry's ``reference`` config.
* **lukewarm** (``0 < iat <= ttl``) -- the instance stays resident but
  interleaving co-tenants evicted its microarchitectural state: exactly
  the registry's ``baseline`` (or ``jukebox``) config, byte-identical
  to today's lukewarm results.
* **cold** (``iat > ttl``) -- the keep-alive policy reclaimed the
  instance; every invocation restores a snapshot (page faults, REAP
  record/replay under the ``page_replay`` toggle), re-runs library
  initialization (trimmed under ``init_trim``) and executes with cold
  microarchitectural state.  Under the ``jukebox`` toggle the
  instruction-side metadata image captured with the snapshot re-arms
  the replayer on restore (:class:`repro.coldstart.model.SnapshotState`
  composing with :mod:`repro.core.snapshot`).

Every cell is a content-addressed engine job (cached, parallel,
SIGKILL-resumable); the sweep emits ``coldstart.*`` trace events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import format_table
from repro.coldstart.model import ColdStartSpec, SpectrumColdStart
from repro.engine import Job, sweep
from repro.engine.sweep import current_context
from repro.errors import ConfigurationError
from repro.experiments.common import (
    RunConfig,
    make_traces,
    register_config,
    run_config,
)
from repro.obs import records as _obs
from repro.sim.core import Simulator
from repro.sim.params import MachineParams, skylake
from repro.sim.simulate import simulate
from repro.workloads.suite import get_profile

#: Swept inter-arrival times in ms (0 = back-to-back warm anchor; the
#: default 10-minute TTL puts the last three points in the cold regime).
DEFAULT_IATS_MS = (0.0, 1_000.0, 30_000.0, 120_000.0, 300_000.0,
                   900_000.0, 1_800_000.0, 3_600_000.0)

#: Keep-alive TTL separating lukewarm from cold (10 minutes, the
#: fixed-keep-alive industry default the paper cites).
DEFAULT_TTL_MS = 600_000.0

#: One function per language (Table 2 suffix convention).
DEFAULT_FUNCTIONS = ("Auth-P", "AES-N", "ProdL-G")

#: Optimization toggles per variant: (jukebox, page_replay, init_trim).
VARIANTS: Dict[str, Tuple[bool, bool, bool]] = {
    "baseline": (False, False, False),
    "jukebox": (True, False, False),
    "page_replay": (False, True, False),
    "init_trim": (False, False, True),
    "all": (True, True, True),
}

REGIME_WARM = "warm"
REGIME_LUKEWARM = "lukewarm"
REGIME_COLD = "cold"

#: Registry configs this experiment sweeps (one cell per point).
SWEEP_CONFIGS = ("spectrum_point",)


def classify_regime(iat_ms: float, ttl_ms: float) -> str:
    """Which regime an inter-arrival time lands in under a TTL."""
    if iat_ms < 0 or ttl_ms <= 0:
        raise ConfigurationError(
            f"need iat_ms >= 0 and ttl_ms > 0, got {iat_ms}, {ttl_ms}")
    if iat_ms == 0:
        return REGIME_WARM
    if iat_ms <= ttl_ms:
        return REGIME_LUKEWARM
    return REGIME_COLD


def _cell_dict(regime: str, iat_ms: float, freq_ghz: float,
               invocations: int, cycles: float, instructions: int,
               init_ms: float = 0.0, page_ms: float = 0.0,
               first_restore_page_ms: float = 0.0,
               replay_page_ms: float = 0.0,
               faulted_pages: int = 0,
               prefetched_pages: int = 0) -> Dict:
    """Canonical per-point payload (plain scalars, JSON/golden-safe)."""
    exec_ms = (cycles / invocations) / (freq_ghz * 1e6) if invocations else 0.0
    return {
        "regime": regime,
        "iat_ms": iat_ms,
        "invocations": invocations,
        "cycles": cycles,
        "instructions": instructions,
        "exec_ms": exec_ms,
        "init_ms": init_ms,
        "page_ms": page_ms,
        "latency_ms": exec_ms + init_ms + page_ms,
        "first_restore_page_ms": first_restore_page_ms,
        "replay_page_ms": replay_page_ms,
        "faulted_pages": faulted_pages,
        "prefetched_pages": prefetched_pages,
    }


@register_config("spectrum_point")
def _build_spectrum_point(profile, machine: MachineParams, cfg: RunConfig,
                          iat_ms: float = 0.0,
                          ttl_ms: float = DEFAULT_TTL_MS,
                          jukebox: bool = False,
                          page_replay: bool = False,
                          init_trim: bool = False) -> Dict:
    """One (function, variant, IAT) cell of the spectrum sweep.

    Warm and lukewarm cells delegate to the registry's ``reference`` /
    ``baseline`` / ``jukebox`` builders, so their simulated sequences
    are byte-identical to the existing experiments (the convergence
    property the differential battery pins).  Cold cells charge the
    :mod:`repro.coldstart` model per invocation on top of a
    flushed-state execution whose Jukebox (when enabled) is restored
    from the snapshot's metadata image each time.
    """
    freq_ghz = machine.core.freq_ghz
    regime = classify_regime(iat_ms, ttl_ms)
    if regime == REGIME_WARM:
        seq = run_config(profile, machine, cfg, "reference")
        return _cell_dict(regime, iat_ms, freq_ghz, len(seq.results),
                          seq.cycles, seq.instructions)
    if regime == REGIME_LUKEWARM:
        seq = run_config(profile, machine, cfg,
                         "jukebox" if jukebox else "baseline")
        return _cell_dict(regime, iat_ms, freq_ghz, len(seq.results),
                          seq.cycles, seq.instructions)

    # Cold regime: every invocation is a snapshot restore.
    model = SpectrumColdStart(ColdStartSpec(
        kind="spectrum", page_replay=page_replay, init_trim=init_trim))
    state = model.state_for("cell", profile)
    sim = Simulator(machine, backend=cfg.backend)
    measured = []
    charges = []
    first_restore_page_ms = 0.0
    for i, trace in enumerate(make_traces(profile, cfg)):
        charge = model.cold_start("cell", profile)
        if i == 0:
            first_restore_page_ms = charge.page_ms
        sim.flush_microarch_state()
        jb = state.restore_jukebox(machine.jukebox) if jukebox else None
        if jb is not None:
            jb.begin_invocation(sim.hierarchy)
        result = simulate(trace, sim=sim)
        if jb is not None:
            jb.end_invocation(sim.hierarchy, result)
            state.capture_metadata(jb)
        if i >= cfg.warmup:
            measured.append(result)
            charges.append(charge)
    n = len(measured)
    last = charges[-1]
    return _cell_dict(
        regime, iat_ms, freq_ghz, n,
        sum(r.cycles for r in measured),
        sum(r.instructions for r in measured),
        init_ms=sum(c.init_ms for c in charges) / n,
        page_ms=sum(c.page_ms for c in charges) / n,
        first_restore_page_ms=first_restore_page_ms,
        replay_page_ms=last.page_ms,
        faulted_pages=last.faulted_pages,
        prefetched_pages=last.prefetched_pages,
    )


@dataclass
class SpectrumResult:
    """The full sweep: function -> variant -> per-IAT point dicts."""

    iats_ms: List[float]
    ttl_ms: float
    freq_ghz: float
    functions: List[str]
    variants: List[str]
    points: Dict[str, Dict[str, List[Dict]]] = field(default_factory=dict)

    def point(self, function: str, variant: str, iat_ms: float) -> Dict:
        return self.points[function][variant][self.iats_ms.index(iat_ms)]


def run(cfg: Optional[RunConfig] = None,
        machine: Optional[MachineParams] = None,
        functions: Sequence[str] = DEFAULT_FUNCTIONS,
        iats_ms: Sequence[float] = DEFAULT_IATS_MS,
        ttl_ms: float = DEFAULT_TTL_MS,
        variants: Optional[Sequence[str]] = None) -> SpectrumResult:
    cfg = cfg if cfg is not None else RunConfig()
    machine = machine if machine is not None else skylake()
    names = list(variants) if variants is not None else list(VARIANTS)
    unknown = [v for v in names if v not in VARIANTS]
    if unknown:
        raise ConfigurationError(
            f"unknown spectrum variants: {', '.join(unknown)}; expected "
            f"a subset of {', '.join(VARIANTS)}")
    ctx = current_context()
    tracer = ctx.tracer
    tracing = tracer is not None and tracer.enabled
    if tracing:
        tracer.emit(_obs.COLDSTART_SWEEP_BEGIN,
                    functions=len(list(functions)), variants=len(names),
                    points=len(list(functions)) * len(names)
                    * len(list(iats_ms)), ttl_ms=float(ttl_ms))
    jobs = [Job.make(get_profile(abbrev), machine, cfg, "spectrum_point",
                     provider=__name__, iat_ms=float(iat),
                     ttl_ms=float(ttl_ms), jukebox=jb, page_replay=pr,
                     init_trim=it)
            for abbrev in functions
            for (jb, pr, it) in (VARIANTS[v] for v in names)
            for iat in iats_ms]
    result = SpectrumResult(iats_ms=[float(i) for i in iats_ms],
                            ttl_ms=float(ttl_ms),
                            freq_ghz=machine.core.freq_ghz,
                            functions=list(functions), variants=names)
    flat = iter(sweep(jobs))
    for abbrev in functions:
        result.points[abbrev] = {}
        for variant in names:
            series = [dict(next(flat)) for _ in iats_ms]
            # Decompose microarchitectural misses against the variant's
            # back-to-back warm anchor (only meaningful with one).
            anchor = next((p["exec_ms"] for p in series
                           if p["regime"] == REGIME_WARM), None)
            for p in series:
                p["uarch_ms"] = (max(0.0, p["exec_ms"] - anchor)
                                 if anchor is not None else None)
                if tracing:
                    tracer.emit(_obs.COLDSTART_POINT, function=abbrev,
                                variant=variant, iat_ms=p["iat_ms"],
                                regime=p["regime"],
                                latency_ms=p["latency_ms"],
                                init_ms=p["init_ms"],
                                page_ms=p["page_ms"])
            result.points[abbrev][variant] = series
    if tracing:
        cold_points = sum(
            1 for fn in result.points.values() for series in fn.values()
            for p in series if p["regime"] == REGIME_COLD)
        tracer.emit(_obs.COLDSTART_SWEEP_END,
                    points=sum(len(s) for fn in result.points.values()
                               for s in fn.values()),
                    cold_points=cold_points)
    return result


def _fmt_iat(iat_ms: float) -> str:
    if iat_ms == 0:
        return "0 (b2b)"
    if iat_ms < 60_000:
        return f"{iat_ms / 1000:.0f}s"
    return f"{iat_ms / 60_000:.0f}min"


def render(result: SpectrumResult) -> str:
    tables = []
    for abbrev in result.functions:
        rows = []
        for i, iat in enumerate(result.iats_ms):
            base = result.points[abbrev]["baseline"][i] \
                if "baseline" in result.points[abbrev] \
                else next(iter(result.points[abbrev].values()))[i]
            row: List[object] = [
                _fmt_iat(iat), base["regime"],
                f"{base['latency_ms']:.2f}ms",
                f"{base['init_ms']:.2f}",
                f"{base['page_ms']:.2f}",
                f"{base['exec_ms']:.2f}",
            ]
            for variant in result.variants:
                if variant == "baseline":
                    continue
                p = result.points[abbrev][variant][i]
                delta = p["latency_ms"] - base["latency_ms"]
                row.append(f"{delta:+.2f}")
            rows.append(row)
        headers = (["IAT", "regime", "latency", "init", "page", "exec"]
                   + [f"Δ{v}" for v in result.variants if v != "baseline"])
        tables.append(format_table(
            headers, rows,
            title=f"{abbrev}: cold→lukewarm→warm spectrum "
                  f"(TTL {result.ttl_ms / 60_000:.0f}min)"))
    # Cold-end decomposition headline: which component dominates.
    lines = []
    for abbrev in result.functions:
        series = result.points[abbrev].get("baseline")
        if not series:
            continue
        cold = [p for p in series if p["regime"] == REGIME_COLD]
        if not cold:
            continue
        p = cold[-1]
        startup = p["init_ms"] + p["page_ms"]
        share = startup / p["latency_ms"] if p["latency_ms"] else 0.0
        lines.append(
            f"{abbrev}: cold-end latency {p['latency_ms']:.1f}ms, "
            f"init+page {startup:.1f}ms ({share:.0%}) vs exec "
            f"{p['exec_ms']:.1f}ms")
    return "\n\n".join(tables + ["\n".join(lines)])
