"""Figure 13: comparison with PIF, the state-of-the-art stream prefetcher.

Protocol (Sec. 5.5): five configurations on the representative trio
(Email-P, Pay-N, ProdL-G) plus geomean -- baseline, PIF (realistic 49KB
index + 164KB streams, state lost between invocations), PIF-ideal
(unlimited persistent metadata), Jukebox, and Jukebox + PIF-ideal.

Paper headlines: PIF +2.4% average (max 4.8%), PIF-ideal +6.7% (max
12.4%), Jukebox +18.7%: bulk replay into the L2 beats demand-synchronized
streaming when the instruction footprint lives in DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.metrics import geomean_speedup, speedup
from repro.analysis.report import format_table
from repro.core.pif import PIFParams, pif_ideal_params
from repro.engine import Job, sweep
from repro.experiments.common import RunConfig
from repro.sim.params import MachineParams, skylake
from repro.workloads.suite import REPRESENTATIVES, suite_subset

CONFIGS = ("pif", "pif_ideal", "jukebox", "jukebox_pif_ideal")

#: Registry configs this experiment sweeps ("pif" covers the PIF-ideal
#: and JB+PIF variants via its params/with_jukebox options).
SWEEP_CONFIGS = ("baseline", "pif", "jukebox")


@dataclass
class Fig13Result:
    functions: List[str] = field(default_factory=list)
    #: config -> abbrev -> speedup fraction.
    speedups: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def geomean(self, config: str) -> float:
        values = list(self.speedups[config].values())
        return geomean_speedup(values) if values else 0.0


def run(cfg: Optional[RunConfig] = None,
        machine: Optional[MachineParams] = None,
        functions: Optional[Sequence[str]] = None) -> Fig13Result:
    cfg = cfg if cfg is not None else RunConfig()
    machine = machine if machine is not None else skylake()
    profiles = suite_subset(
        list(functions) if functions else list(REPRESENTATIVES))
    result = Fig13Result(functions=[p.abbrev for p in profiles])
    for config in CONFIGS:
        result.speedups[config] = {}

    pif_params = PIFParams()
    ideal_params = pif_ideal_params()
    cell_opts = {
        "pif": {"params": pif_params},
        "pif_ideal": {"params": ideal_params},
        "jukebox": {},
        "jukebox_pif_ideal": {"params": ideal_params, "with_jukebox": True},
    }
    registry_config = {"pif": "pif", "pif_ideal": "pif", "jukebox": "jukebox",
                       "jukebox_pif_ideal": "pif"}
    jobs = []
    for profile in profiles:
        jobs.append(Job.make(profile, machine, cfg, "baseline"))
        for config in CONFIGS:
            jobs.append(Job.make(profile, machine, cfg,
                                 registry_config[config],
                                 **cell_opts[config]))
    flat = iter(sweep(jobs))
    for profile in profiles:
        base_cycles = next(flat).cycles
        for config in CONFIGS:
            result.speedups[config][profile.abbrev] = speedup(
                base_cycles, next(flat).cycles)
    return result


_LABELS = {
    "pif": "PIF",
    "pif_ideal": "PIF-ideal",
    "jukebox": "Jukebox",
    "jukebox_pif_ideal": "JB + PIF-ideal",
}


def render(result: Fig13Result) -> str:
    headers = ["Config"] + result.functions + ["GEOMEAN"]
    rows = []
    for config in CONFIGS:
        row: List[object] = [_LABELS[config]]
        for abbrev in result.functions:
            row.append(f"{result.speedups[config][abbrev] * 100:+.1f}%")
        row.append(f"{result.geomean(config) * 100:+.1f}%")
        rows.append(row)
    table = format_table(headers, rows,
                         title="Figure 13: PIF vs. Jukebox speedups")
    summary = (f"PIF {result.geomean('pif') * 100:+.1f}% (paper: +2.4%), "
               f"PIF-ideal {result.geomean('pif_ideal') * 100:+.1f}% "
               f"(paper: +6.7%), Jukebox {result.geomean('jukebox') * 100:+.1f}% "
               f"(paper: +18.7%)")
    return f"{table}\n\n{summary}"
