"""Figure 1: effect of request inter-arrival time on CPI.

Protocol (Sec. 2.2): a function-under-test runs on a high-occupancy server
(~50% CPU load from other warm instances).  Its invocation IAT is fixed per
experiment; between invocations the co-tenants progressively evict its
microarchitectural state (graded LLC decay; private state thrashes within
milliseconds) and during execution its DRAM accesses queue behind tenant
traffic.  CPI is reported normalized to back-to-back invocations.

The paper plots Auth-Python and AES-NodeJS: the CPI grows with IAT and
saturates at roughly 2.7x / 2.5x beyond a one-second IAT.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.report import format_table
from repro.engine import Job, sweep
from repro.experiments.common import (
    RunConfig,
    SequenceResult,
    make_traces,
    register_config,
)
from repro.server.stressor import Stressor
from repro.sim.core import Simulator
from repro.sim.simulate import simulate
from repro.sim.params import MachineParams, broadwell
from repro.workloads.suite import get_profile

#: The paper's x-axis points, in milliseconds (0 = back-to-back).
DEFAULT_IATS_MS = (0.0, 10.0, 100.0, 1000.0, 10000.0)
DEFAULT_FUNCTIONS = ("Auth-P", "AES-N")
DEFAULT_LOAD = 0.5

#: Registry configs this experiment sweeps (one cell per (function, IAT)).
SWEEP_CONFIGS = ("contended",)


@register_config("contended")
def _build_contended(profile, machine: MachineParams, cfg: RunConfig,
                     iat_ms: float = 0.0,
                     load: float = DEFAULT_LOAD) -> SequenceResult:
    """One (function, IAT) cell: invocations on a high-occupancy server.

    With ``iat_ms > 0`` the co-tenant stressor decays the function's
    microarchitectural state during the idle gap and queues its DRAM
    accesses behind tenant traffic; ``iat_ms == 0`` is the back-to-back
    anchor.
    """
    stressor = Stressor(load=load, seed=cfg.seed)
    sim = Simulator(machine, backend=cfg.backend)
    measured = []
    for i, trace in enumerate(make_traces(profile, cfg)):
        if iat_ms > 0:
            stressor.idle_gap(sim, iat_ms)
            stressor.apply_contention(sim)
        else:
            stressor.clear_contention(sim)
        result = simulate(trace, sim=sim)
        if i >= cfg.warmup:
            measured.append(result)
    return SequenceResult(results=measured)


@dataclass
class Fig1Result:
    """Normalized CPI per function per IAT point."""

    iats_ms: List[float]
    load: float
    #: function abbrev -> list of normalized CPI (same order as iats_ms).
    normalized_cpi: Dict[str, List[float]] = field(default_factory=dict)
    baseline_cpi: Dict[str, float] = field(default_factory=dict)


def run(cfg: Optional[RunConfig] = None,
        machine: Optional[MachineParams] = None,
        functions: Sequence[str] = DEFAULT_FUNCTIONS,
        iats_ms: Sequence[float] = DEFAULT_IATS_MS,
        load: float = DEFAULT_LOAD) -> Fig1Result:
    cfg = cfg if cfg is not None else RunConfig()
    machine = machine if machine is not None else broadwell()
    result = Fig1Result(iats_ms=list(iats_ms), load=load)

    jobs = [Job.make(get_profile(abbrev), machine, cfg, "contended",
                     provider=__name__, iat_ms=float(iat), load=load)
            for abbrev in functions for iat in iats_ms]
    flat = iter(sweep(jobs))
    for abbrev in functions:
        series: List[float] = []
        back_to_back: Optional[float] = None
        for _ in iats_ms:
            cpi = next(flat).cpi
            if back_to_back is None:
                back_to_back = cpi  # the iat=0 point anchors normalization
            series.append(cpi / back_to_back)
        result.normalized_cpi[abbrev] = series
        result.baseline_cpi[abbrev] = back_to_back if back_to_back else 0.0
    return result


def render(result: Fig1Result) -> str:
    headers = ["IAT [ms]"] + [f"{fn} [norm. CPI]" for fn in result.normalized_cpi]
    rows = []
    for i, iat in enumerate(result.iats_ms):
        row: List[object] = [int(iat)]
        for series in result.normalized_cpi.values():
            row.append(f"{series[i] * 100:.0f}%")
        rows.append(row)
    return format_table(
        headers, rows,
        title=(f"Figure 1: CPI vs. inter-arrival time at {result.load:.0%} "
               f"server load (normalized to back-to-back)"),
    )
