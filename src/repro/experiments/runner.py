"""Command-line entry point: regenerate any paper table or figure.

Usage (installed as ``lukewarm-repro``)::

    lukewarm-repro list
    lukewarm-repro fig10                 # full scale
    lukewarm-repro fig10 --fast          # reduced scale
    lukewarm-repro fig01 fig02 --fast
    lukewarm-repro all --fast
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, NamedTuple, Optional

from repro.experiments import (
    ext_throughput,
    fig01_iat,
    fig02_topdown,
    fig03_frontend,
    fig04_cpi_breakdown,
    fig05_mpki,
    fig06_footprints,
    fig08_metadata,
    fig09_storage,
    fig10_speedup,
    fig11_coverage,
    fig12_bandwidth,
    fig13_pif,
    table1_config,
    table2_workloads,
    table3_mpki_reduction,
)
from repro.experiments.common import RunConfig


class Experiment(NamedTuple):
    name: str
    description: str
    run: Callable
    render: Callable


EXPERIMENTS: Dict[str, Experiment] = {
    "fig01": Experiment("fig01", "CPI vs. inter-arrival time",
                        fig01_iat.run, fig01_iat.render),
    "fig02": Experiment("fig02", "Top-Down CPI stacks",
                        fig02_topdown.run, fig02_topdown.render),
    "fig03": Experiment("fig03", "front-end stall split",
                        fig03_frontend.run, fig03_frontend.render),
    "fig04": Experiment("fig04", "mean CPI breakdown",
                        fig04_cpi_breakdown.run, fig04_cpi_breakdown.render),
    "fig05": Experiment("fig05", "L2/L3 MPKI breakdowns",
                        fig05_mpki.run, fig05_mpki.render),
    "fig06": Experiment("fig06", "footprints and commonality",
                        fig06_footprints.run, fig06_footprints.render),
    "fig08": Experiment("fig08", "metadata size vs. region size",
                        fig08_metadata.run, fig08_metadata.render),
    "fig09": Experiment("fig09", "speedup vs. metadata budget",
                        fig09_storage.run, fig09_storage.render),
    "fig10": Experiment("fig10", "main speedup result",
                        fig10_speedup.run, fig10_speedup.render),
    "fig11": Experiment("fig11", "miss coverage",
                        fig11_coverage.run, fig11_coverage.render),
    "fig12": Experiment("fig12", "memory-bandwidth overhead",
                        fig12_bandwidth.run, fig12_bandwidth.render),
    "fig13": Experiment("fig13", "PIF comparison",
                        fig13_pif.run, fig13_pif.render),
    "table1": Experiment("table1", "simulated processor parameters",
                         table1_config.run, table1_config.render),
    "table2": Experiment("table2", "function suite",
                         table2_workloads.run, table2_workloads.render),
    "table3": Experiment("table3", "MPKI reduction, Skylake vs. Broadwell",
                         table3_mpki_reduction.run,
                         table3_mpki_reduction.render),
    "throughput": Experiment("throughput",
                             "extension: server capacity uplift",
                             ext_throughput.run, ext_throughput.render),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="lukewarm-repro",
        description=("Regenerate tables/figures from 'Lukewarm Serverless "
                     "Functions' (ISCA 2022)"))
    parser.add_argument("experiments", nargs="+",
                        help="experiment names (see 'list'), or 'all'/'list'")
    parser.add_argument("--fast", action="store_true",
                        help="reduced scale (fewer invocations, scaled traces)")
    parser.add_argument("--functions", nargs="*", default=None,
                        help="restrict to these function abbreviations")
    parser.add_argument("--seed", type=int, default=1)
    return parser


def run_experiment(name: str, cfg: RunConfig,
                   functions: Optional[List[str]] = None) -> str:
    """Run one experiment by name and return its rendered report."""
    exp = EXPERIMENTS[name]
    kwargs = {}
    if functions:
        kwargs["functions"] = functions
    result = exp.run(cfg, **kwargs)
    return exp.render(result)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    names = list(args.experiments)
    if "list" in names:
        for exp in EXPERIMENTS.values():
            print(f"{exp.name:8s} {exp.description}")
        return 0
    if "all" in names:
        names = list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    cfg = RunConfig.fast() if args.fast else RunConfig.full()
    cfg = RunConfig(invocations=cfg.invocations, warmup=cfg.warmup,
                    seed=args.seed, instruction_scale=cfg.instruction_scale)
    for name in names:
        started = time.time()
        print(f"== {name}: {EXPERIMENTS[name].description} ==")
        print(run_experiment(name, cfg, args.functions))
        print(f"-- {name} done in {time.time() - started:.1f}s --\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
