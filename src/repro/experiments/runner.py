"""Command-line entry point: regenerate any paper table or figure.

Usage (installed as ``lukewarm-repro``)::

    lukewarm-repro list
    lukewarm-repro fig10                 # full scale
    lukewarm-repro fig10 --fast          # reduced scale
    lukewarm-repro fig01 fig02 --fast --jobs 4
    lukewarm-repro all --fast --no-cache
    lukewarm-repro fig05 --fast --json

Simulation cells are dispatched through :mod:`repro.engine`: ``--jobs``
fans them out over worker processes (results stay bit-identical to a
serial run) and a content-addressed cache under ``--cache-dir`` memoizes
each cell so re-runs skip simulation entirely.

Failure handling: ``--retries N`` re-runs transiently failing cells with
deterministic backoff, ``--keep-going`` finishes the remaining
experiments when one fails (completed cells stay cached either way, so a
rerun resumes warm), ``--job-timeout`` / ``--sweep-deadline`` bound hung
cells and runaway batches in wall-clock time (hung pool workers are
killed and retried; an expired sweep fails fast), and ``--inject-fault
SPEC`` activates the deterministic fault harness (:mod:`repro.faults`)
for failure drills.  Exit status: 0 on success, 2 on a usage error, 3
when any experiment failed (deadline expiries included).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, NamedTuple, Optional, Tuple

from repro import engine
from repro.errors import ConfigurationError
from repro.experiments import (
    ext_fleet,
    ext_spectrum,
    ext_throughput,
    fig01_iat,
    fig02_topdown,
    fig03_frontend,
    fig04_cpi_breakdown,
    fig05_mpki,
    fig06_footprints,
    fig08_metadata,
    fig09_storage,
    fig10_speedup,
    fig11_coverage,
    fig12_bandwidth,
    fig13_pif,
    table1_config,
    table2_workloads,
    table3_mpki_reduction,
)
from repro.experiments.common import RunConfig
from repro.faults import parse_fault_plan
from repro.sim.core import BACKENDS

#: Environment variable overriding the default result-cache location.
CACHE_DIR_ENV = "LUKEWARM_CACHE_DIR"


class Experiment(NamedTuple):
    name: str
    description: str
    run: Callable
    render: Callable
    configs: Tuple[str, ...] = ()


def _experiment(name: str, description: str, module) -> Experiment:
    return Experiment(name, description, module.run, module.render,
                      tuple(getattr(module, "SWEEP_CONFIGS", ())))


EXPERIMENTS: Dict[str, Experiment] = {
    "fig01": _experiment("fig01", "CPI vs. inter-arrival time", fig01_iat),
    "fig02": _experiment("fig02", "Top-Down CPI stacks", fig02_topdown),
    "fig03": _experiment("fig03", "front-end stall split", fig03_frontend),
    "fig04": _experiment("fig04", "mean CPI breakdown", fig04_cpi_breakdown),
    "fig05": _experiment("fig05", "L2/L3 MPKI breakdowns", fig05_mpki),
    "fig06": _experiment("fig06", "footprints and commonality",
                         fig06_footprints),
    "fig08": _experiment("fig08", "metadata size vs. region size",
                         fig08_metadata),
    "fig09": _experiment("fig09", "speedup vs. metadata budget",
                         fig09_storage),
    "fig10": _experiment("fig10", "main speedup result", fig10_speedup),
    "fig11": _experiment("fig11", "miss coverage", fig11_coverage),
    "fig12": _experiment("fig12", "memory-bandwidth overhead",
                         fig12_bandwidth),
    "fig13": _experiment("fig13", "PIF comparison", fig13_pif),
    "table1": _experiment("table1", "simulated processor parameters",
                          table1_config),
    "table2": _experiment("table2", "function suite", table2_workloads),
    "table3": _experiment("table3", "MPKI reduction, Skylake vs. Broadwell",
                          table3_mpki_reduction),
    "throughput": _experiment("throughput",
                              "extension: server capacity uplift",
                              ext_throughput),
    "fleet": _experiment("fleet",
                         "extension: region-scale fleet capacity",
                         ext_fleet),
    "spectrum": _experiment("spectrum",
                            "extension: cold→lukewarm→warm frequency sweep",
                            ext_spectrum),
}


def default_cache_dir() -> Path:
    """Resolve the on-disk result cache location.

    ``LUKEWARM_CACHE_DIR`` wins; otherwise ``$XDG_CACHE_HOME`` (or
    ``~/.cache``) plus ``lukewarm-repro``.
    """
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "lukewarm-repro"


def _positive_int(text: str) -> int:
    """argparse type: an integer >= 1, rejected at parse time."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    """argparse type: an integer >= 0, rejected at parse time."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _positive_float(text: str) -> float:
    """argparse type: a float > 0, rejected at parse time."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a number of seconds, got {text!r}") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0 seconds, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="lukewarm-repro",
        description=("Regenerate tables/figures from 'Lukewarm Serverless "
                     "Functions' (ISCA 2022)"))
    parser.add_argument("experiments", nargs="+",
                        help="experiment names (see 'list'), or 'all'/'list'")
    parser.add_argument("--fast", action="store_true",
                        help="reduced scale (fewer invocations, scaled traces)")
    parser.add_argument("--functions", nargs="*", default=None,
                        help="restrict to these function abbreviations")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--backend", choices=BACKENDS, default="columnar",
                        help="simulation backend; both produce byte-"
                             "identical results, 'scalar' is the slow "
                             "reference interpreter (default: columnar)")
    parser.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                        help="simulate up to N cells in parallel "
                             "(default: 1, serial)")
    parser.add_argument("--retries", type=_nonnegative_int, default=0,
                        metavar="N",
                        help="retry transiently failing cells up to N times "
                             "with deterministic backoff (default: 0)")
    parser.add_argument("--keep-going", action="store_true",
                        help="on an experiment failure, keep running the "
                             "remaining experiments and exit 3 at the end")
    parser.add_argument("--inject-fault", action="append", default=None,
                        metavar="SPEC", dest="inject_faults",
                        help="inject a deterministic fault (repeatable); "
                             "SPEC is ACTION:SELECTOR[:OPTION...], e.g. "
                             "'fail:#3', 'kill:#2', 'fail:config=jukebox:"
                             "always', 'corrupt:*'")
    parser.add_argument("--job-timeout", type=_positive_float, default=None,
                        metavar="SECONDS", dest="job_timeout",
                        help="kill any single simulation cell running longer "
                             "than this (hung workers are reaped and the "
                             "cell retried per --retries; needs --jobs >= 2 "
                             "to preempt)")
    parser.add_argument("--sweep-deadline", type=_positive_float, default=None,
                        metavar="SECONDS", dest="sweep_deadline",
                        help="fail whatever a sweep batch has not finished "
                             "after this many seconds (the run exits 3; "
                             "completed cells stay cached)")
    parser.add_argument("--maxtasksperchild", type=_positive_int,
                        default=engine.DEFAULT_MAXTASKSPERCHILD, metavar="N",
                        help="recycle each pool worker after N cells "
                             f"(default: {engine.DEFAULT_MAXTASKSPERCHILD})")
    parser.add_argument("--cache-dir", type=Path, default=None, metavar="PATH",
                        help="result cache location (default: "
                             f"${CACHE_DIR_ENV} or ~/.cache/lukewarm-repro)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the result cache for this run")
    parser.add_argument("--trace", type=Path, default=None, metavar="FILE",
                        help="write a repro.obs JSONL event trace to FILE "
                             "(inspect with 'python -m repro.obs summarize')")
    parser.add_argument("--metrics-out", type=Path, default=None,
                        metavar="FILE", dest="metrics_out",
                        help="write the engine metrics registry to FILE as "
                             "canonical JSON")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit reports plus engine stats as JSON")
    return parser


def run_experiment(name: str, cfg: RunConfig,
                   functions: Optional[List[str]] = None) -> str:
    """Run one experiment by name and return its rendered report."""
    exp = EXPERIMENTS[name]
    kwargs = {}
    if functions:
        kwargs["functions"] = functions
    result = exp.run(cfg, **kwargs)
    return exp.render(result)


def _print_listing() -> None:
    for exp in EXPERIMENTS.values():
        sweeps = f"  [{', '.join(exp.configs)}]" if exp.configs else ""
        print(f"{exp.name:8s} {exp.description}{sweeps}")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    names = list(args.experiments)
    if "list" in names:
        _print_listing()
        return 0
    if "all" in names:
        names = list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    if args.no_cache and args.cache_dir is not None:
        print("--no-cache and --cache-dir contradict each other; "
              "pass at most one", file=sys.stderr)
        return 2
    try:
        faults = parse_fault_plan(args.inject_faults or ())
    except ConfigurationError as exc:
        print(f"--inject-fault: {exc}", file=sys.stderr)
        return 2
    policy = (engine.FailurePolicy.retrying(retries=args.retries, seed=args.seed)
              if args.retries else None)
    cfg = (RunConfig.fast() if args.fast else RunConfig.full()).replace(
        seed=args.seed, backend=args.backend)
    cache_dir: Optional[Path]
    if args.no_cache:
        cache_dir = None
    else:
        cache_dir = args.cache_dir if args.cache_dir else default_cache_dir()
    records: List[Dict[str, object]] = []
    failed: List[Tuple[str, BaseException]] = []
    with engine.configure(jobs=args.jobs, cache_dir=cache_dir,
                          clock=time.perf_counter, policy=policy,
                          faults=faults, sleep=time.sleep,
                          maxtasksperchild=args.maxtasksperchild,
                          trace_path=args.trace,
                          job_timeout_s=args.job_timeout,
                          sweep_deadline_s=args.sweep_deadline) as ctx:
        for name in names:
            before = ctx.stats.snapshot()
            started = time.time()  # repro-lint: disable=REPRO006 -- CLI progress reporting, not simulation
            try:
                report = run_experiment(name, cfg, args.functions)
                error = None
            except Exception as exc:  # repro-lint: disable=REPRO005
                # Completed cells are already checkpointed in the cache;
                # record the failure and (under --keep-going) move on.
                report = None
                error = exc
                failed.append((name, exc))
            seconds = time.time() - started  # repro-lint: disable=REPRO006 -- CLI progress reporting, not simulation
            delta = ctx.stats.since(before)
            if args.as_json:
                records.append({
                    "experiment": name,
                    "description": EXPERIMENTS[name].description,
                    "seconds": round(seconds, 3),
                    "report": report,
                    "error": (f"{type(error).__name__}: {error}"
                              if error is not None else None),
                    "engine": {
                        "cells": delta.jobs,
                        "cache_hits": delta.hits,
                        "simulated": delta.misses,
                        "failures": delta.failures,
                        "retries": delta.retries,
                        "sim_seconds": round(delta.sim_seconds, 3),
                    },
                })
            elif error is not None:
                print(f"== {name}: {EXPERIMENTS[name].description} ==")
                print(f"-- {name} FAILED after {seconds:.1f}s: "
                      f"{type(error).__name__}: {error} --\n", file=sys.stderr)
            else:
                print(f"== {name}: {EXPERIMENTS[name].description} ==")
                print(report)
                print(f"-- {name} done in {seconds:.1f}s "
                      f"({delta.describe()}) --\n")
            if error is not None and not args.keep_going:
                break
        if args.metrics_out is not None:
            ctx.metrics.write_json(args.metrics_out)
        footer = ctx.tracer.describe()
    if args.as_json:
        print(json.dumps(records, indent=2))
    elif footer != "obs: no events":
        print(footer)
    if args.trace is not None:
        print(f"trace written to {args.trace} "
              f"({ctx.tracer.events_emitted} events)", file=sys.stderr)
    if failed:
        summary = ", ".join(name for name, _ in failed)
        print(f"{len(failed)} experiment(s) failed: {summary}; completed "
              f"cells are cached, rerun to resume warm", file=sys.stderr)
        return 3
    return 0


if __name__ == "__main__":
    sys.exit(main())
