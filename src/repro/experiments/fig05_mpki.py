"""Figure 5: L2 and L3 MPKI breakdowns (instructions vs. data).

Same two configurations as Fig. 2 on the characterization platform with
its small 256KB L2.  Paper headlines: high L2 MPKI in both configurations
(instruction misses exceed data misses); the LLC sees essentially *no*
instruction misses in reference runs but >10 MPKI under interleaving.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.analysis.report import format_table
from repro.engine import sweep_configs
from repro.experiments.common import RunConfig
from repro.sim.params import MachineParams, broadwell
from repro.workloads.suite import suite_subset

#: Registry configs this experiment sweeps per function.
SWEEP_CONFIGS = ("reference", "baseline")


@dataclass
class Fig5Entry:
    abbrev: str
    l2_ref_inst: float
    l2_ref_data: float
    l2_int_inst: float
    l2_int_data: float
    llc_ref_inst: float
    llc_ref_data: float
    llc_int_inst: float
    llc_int_data: float


@dataclass
class Fig5Result:
    entries: List[Fig5Entry] = field(default_factory=list)

    def mean(self, attr: str) -> float:
        return sum(getattr(e, attr) for e in self.entries) / len(self.entries)

    @property
    def mean_l2_ref_total(self) -> float:
        return self.mean("l2_ref_inst") + self.mean("l2_ref_data")

    @property
    def mean_l2_int_total(self) -> float:
        return self.mean("l2_int_inst") + self.mean("l2_int_data")


def run(cfg: Optional[RunConfig] = None,
        machine: Optional[MachineParams] = None,
        functions: Optional[Sequence[str]] = None) -> Fig5Result:
    cfg = cfg if cfg is not None else RunConfig()
    machine = machine if machine is not None else broadwell()
    result = Fig5Result()
    profiles = suite_subset(list(functions) if functions else None)
    runs = sweep_configs(profiles, machine, cfg, SWEEP_CONFIGS)
    for profile in profiles:
        ref = runs[profile.abbrev]["reference"]
        itl = runs[profile.abbrev]["baseline"]
        result.entries.append(Fig5Entry(
            abbrev=profile.abbrev,
            l2_ref_inst=ref.mean_mpki("l2", "inst"),
            l2_ref_data=ref.mean_mpki("l2", "data"),
            l2_int_inst=itl.mean_mpki("l2", "inst"),
            l2_int_data=itl.mean_mpki("l2", "data"),
            llc_ref_inst=ref.mean_mpki("llc", "inst"),
            llc_ref_data=ref.mean_mpki("llc", "data"),
            llc_int_inst=itl.mean_mpki("llc", "inst"),
            llc_int_data=itl.mean_mpki("llc", "data"),
        ))
    return result


def render(result: Fig5Result) -> str:
    rows_l2 = [[e.abbrev, e.l2_ref_inst, e.l2_ref_data,
                e.l2_int_inst, e.l2_int_data] for e in result.entries]
    rows_l2.append(["Mean", result.mean("l2_ref_inst"), result.mean("l2_ref_data"),
                    result.mean("l2_int_inst"), result.mean("l2_int_data")])
    rows_l3 = [[e.abbrev, e.llc_ref_inst, e.llc_ref_data,
                e.llc_int_inst, e.llc_int_data] for e in result.entries]
    rows_l3.append(["Mean", result.mean("llc_ref_inst"),
                    result.mean("llc_ref_data"),
                    result.mean("llc_int_inst"), result.mean("llc_int_data")])
    t1 = format_table(
        ["Function", "ref inst", "ref data", "int inst", "int data"],
        rows_l2, title="Figure 5a: L2 MPKI breakdown")
    t2 = format_table(
        ["Function", "ref inst", "ref data", "int inst", "int data"],
        rows_l3, title="Figure 5b: L3 (LLC) MPKI breakdown")
    return f"{t1}\n\n{t2}"
