"""Table 1: parameters of the simulated processor.

Not a measurement -- this regenerates the configuration table from the
actual :class:`~repro.sim.params.MachineParams` instance the evaluation
experiments use, so any drift between documentation and simulation is
impossible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.analysis.report import format_table
from repro.sim.params import MachineParams, skylake
from repro.units import KB

#: No simulation cells: the table is read straight off MachineParams.
SWEEP_CONFIGS = ()


@dataclass
class Table1Result:
    machine: MachineParams
    rows: List[Tuple[str, str]]


def run(cfg=None, machine: Optional[MachineParams] = None,
        functions=None) -> Table1Result:
    m = machine if machine is not None else skylake()
    core, mem, jb = m.core, m.memory, m.jukebox
    rows: List[Tuple[str, str]] = [
        ("Architecture", f"{m.name}-like, ISA: x86-64, "
                         f"Freq.: {core.freq_ghz}GHz"),
        ("Fetch BW", f"{core.fetch_bytes_per_cycle} bytes / cycle"),
        ("BP Unit", f"gShare {core.gshare_entries // 1024}K + bimodal "
                    f"{core.bimodal_entries // 1024}K + BTB "
                    f"{core.btb_entries // 1024}K entries"),
        ("ROB", f"{core.rob_entries} entries"),
        ("Issue width", str(core.issue_width)),
        ("L1-I Cache", _cache_row(m.l1i)),
        ("L1-D Cache", _cache_row(m.l1d) + ", next-line prefetcher"),
        ("L2 Cache", _cache_row(m.l2)),
        ("LLC", _cache_row(m.llc) + ", shared, non-inclusive"),
        ("I-TLB", f"{m.itlb.entries} entries, {m.itlb.assoc}-way"),
        ("D-TLB", f"{m.dtlb.entries} entries, {m.dtlb.assoc}-way"),
        ("Memory", f"DDR4, {mem.latency}-cycle random / "
                   f"{mem.row_hit_latency}-cycle streamed, "
                   f"{mem.bytes_per_cycle:.1f} B/cycle"),
        ("Jukebox", f"CRRB: {jb.crrb_entries} entries, Region size: "
                    f"{jb.region_size // KB}KB, {2 * jb.metadata_bytes // KB}KB "
                    f"metadata ({jb.metadata_bytes // KB}KB record + "
                    f"{jb.metadata_bytes // KB}KB replay)"),
    ]
    return Table1Result(machine=m, rows=rows)


def _cache_row(c) -> str:
    return (f"{c.size // KB}KB, {c.line_size}B line, {c.assoc}-way, "
            f"{c.latency}-cycle, {c.mshrs} MSHRs, LRU")


def render(result: Table1Result) -> str:
    return format_table(
        ["Component", "Configuration"], result.rows,
        title="Table 1: parameters of the simulated processor")
