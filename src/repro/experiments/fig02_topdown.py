"""Figure 2: Top-Down CPI stacks, reference vs. interleaved execution.

Protocol (Sec. 2.3): each of the 20 functions runs in two configurations on
the characterization platform -- *reference* (back-to-back on an idle core,
fully warm state) and *interleaved* (a stressor obliterates all
microarchitectural state between invocations).  The CPI stack is broken
into the four top-level Top-Down categories.

Headline paper numbers: interleaving raises CPI by 31-114% (mean ~70%);
front-end stalls are ~51%/55% of all cycles in reference/interleaved runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.report import format_stacked_bars, format_table
from repro.engine import sweep_configs
from repro.experiments.common import RunConfig
from repro.sim.params import MachineParams, broadwell
from repro.sim.topdown import TopDownBreakdown
from repro.workloads.suite import suite_subset

CATEGORIES = ("retiring", "fetch_latency", "fetch_bandwidth",
              "bad_speculation", "backend_bound")

#: Registry configs this experiment sweeps per function (Figs. 3 and 4
#: are derived from the same runs).
SWEEP_CONFIGS = ("reference", "baseline")


@dataclass
class Fig2Entry:
    """Per-function reference and interleaved CPI stacks."""

    abbrev: str
    reference: Dict[str, float]
    interleaved: Dict[str, float]

    @property
    def reference_cpi(self) -> float:
        return sum(self.reference.values())

    @property
    def interleaved_cpi(self) -> float:
        return sum(self.interleaved.values())

    @property
    def cpi_increase(self) -> float:
        return self.interleaved_cpi / self.reference_cpi - 1.0

    def frontend_fraction(self, which: str) -> float:
        stack = self.reference if which == "reference" else self.interleaved
        total = sum(stack.values())
        return (stack["fetch_latency"] + stack["fetch_bandwidth"]) / total


@dataclass
class Fig2Result:
    entries: List[Fig2Entry] = field(default_factory=list)

    @property
    def mean_cpi_increase(self) -> float:
        return sum(e.cpi_increase for e in self.entries) / len(self.entries)

    def mean_frontend_fraction(self, which: str) -> float:
        return (sum(e.frontend_fraction(which) for e in self.entries)
                / len(self.entries))

    def mean_stack(self, which: str) -> Dict[str, float]:
        acc = {cat: 0.0 for cat in CATEGORIES}
        for e in self.entries:
            stack = e.reference if which == "reference" else e.interleaved
            for cat in CATEGORIES:
                acc[cat] += stack[cat]
        return {cat: v / len(self.entries) for cat, v in acc.items()}


def _stack(td: TopDownBreakdown, instructions: int) -> Dict[str, float]:
    return {cat: getattr(td, cat) / max(1, instructions) for cat in CATEGORIES}


def run(cfg: Optional[RunConfig] = None,
        machine: Optional[MachineParams] = None,
        functions: Optional[Sequence[str]] = None) -> Fig2Result:
    cfg = cfg if cfg is not None else RunConfig()
    machine = machine if machine is not None else broadwell()
    result = Fig2Result()
    profiles = suite_subset(list(functions) if functions else None)
    runs = sweep_configs(profiles, machine, cfg, SWEEP_CONFIGS)
    for profile in profiles:
        ref = runs[profile.abbrev]["reference"]
        itl = runs[profile.abbrev]["baseline"]
        ref_td = sum((r.topdown for r in ref.results), TopDownBreakdown())
        itl_td = sum((r.topdown for r in itl.results), TopDownBreakdown())
        result.entries.append(Fig2Entry(
            abbrev=profile.abbrev,
            reference=_stack(ref_td, ref.instructions),
            interleaved=_stack(itl_td, itl.instructions),
        ))
    return result


def render(result: Fig2Result) -> str:
    parts: List[str] = []
    labels: List[str] = []
    stacks: List[Dict[str, float]] = []
    for entry in result.entries:
        labels.append(f"{entry.abbrev} (ref)")
        stacks.append(entry.reference)
        labels.append(f"{entry.abbrev} (int)")
        stacks.append(entry.interleaved)
    symbols = {"retiring": "R", "fetch_latency": "L", "fetch_bandwidth": "W",
               "bad_speculation": "S", "backend_bound": "B"}
    parts.append(format_stacked_bars(
        labels, stacks, order=list(CATEGORIES), symbols=symbols,
        title="Figure 2: Top-Down CPI stacks (striped=reference, solid=interleaved)",
    ))
    rows = [[e.abbrev, e.reference_cpi, e.interleaved_cpi,
             f"{e.cpi_increase * 100:+.0f}%",
             f"{e.frontend_fraction('reference') * 100:.0f}%",
             f"{e.frontend_fraction('interleaved') * 100:.0f}%"]
            for e in result.entries]
    rows.append(["Mean",
                 sum(e.reference_cpi for e in result.entries) / len(result.entries),
                 sum(e.interleaved_cpi for e in result.entries) / len(result.entries),
                 f"{result.mean_cpi_increase * 100:+.0f}%",
                 f"{result.mean_frontend_fraction('reference') * 100:.0f}%",
                 f"{result.mean_frontend_fraction('interleaved') * 100:.0f}%"])
    parts.append(format_table(
        ["Function", "CPI ref", "CPI int", "Increase", "FE% ref", "FE% int"],
        rows, title="Summary"))
    return "\n\n".join(parts)
