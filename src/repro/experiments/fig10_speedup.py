"""Figure 10: the main result -- Jukebox and perfect-I-cache speedups.

Protocol (Sec. 5.2): the Skylake-like machine; the baseline flushes all
microarchitectural state between invocations; Jukebox uses 16KB metadata,
1KB regions and a 16-entry CRRB; perfect-I-cache is an infinite L1-I whose
contents survive across invocations.  Speedups are relative to the
baseline.  Paper headlines: Jukebox +18.7% geomean (max ~29.5% on Auth-G);
perfect-I-cache +31% mean (max 46% on Auth-N); per-function Jukebox gains
correlate with the perfect-I-cache opportunity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.analysis.metrics import geomean_speedup, speedup
from repro.analysis.report import format_table
from repro.engine import sweep_configs
from repro.experiments.common import RunConfig
from repro.sim.params import MachineParams, skylake
from repro.workloads.suite import suite_subset

#: Registry configs this experiment sweeps per function.
SWEEP_CONFIGS = ("baseline", "jukebox", "perfect")


@dataclass
class Fig10Entry:
    abbrev: str
    baseline_cpi: float
    jukebox_speedup: float
    perfect_speedup: float


@dataclass
class Fig10Result:
    entries: List[Fig10Entry] = field(default_factory=list)

    @property
    def jukebox_geomean(self) -> float:
        return geomean_speedup([e.jukebox_speedup for e in self.entries])

    @property
    def perfect_geomean(self) -> float:
        return geomean_speedup([e.perfect_speedup for e in self.entries])

    def correlation(self) -> float:
        """Pearson correlation between Jukebox and perfect-I$ speedups
        (the paper notes the two track each other)."""
        import numpy as np
        jb = [e.jukebox_speedup for e in self.entries]
        pf = [e.perfect_speedup for e in self.entries]
        if len(jb) < 2:
            return 1.0
        return float(np.corrcoef(jb, pf)[0, 1])


def run(cfg: Optional[RunConfig] = None,
        machine: Optional[MachineParams] = None,
        functions: Optional[Sequence[str]] = None) -> Fig10Result:
    cfg = cfg if cfg is not None else RunConfig()
    machine = machine if machine is not None else skylake()
    result = Fig10Result()
    profiles = suite_subset(list(functions) if functions else None)
    runs = sweep_configs(profiles, machine, cfg, SWEEP_CONFIGS)
    for profile in profiles:
        cell = runs[profile.abbrev]
        base, jb, pf = cell["baseline"], cell["jukebox"], cell["perfect"]
        result.entries.append(Fig10Entry(
            abbrev=profile.abbrev,
            baseline_cpi=base.cpi,
            jukebox_speedup=speedup(base.cycles, jb.cycles),
            perfect_speedup=speedup(base.cycles, pf.cycles),
        ))
    return result


def render(result: Fig10Result) -> str:
    rows = [[e.abbrev, e.baseline_cpi,
             f"{e.jukebox_speedup * 100:+.1f}%",
             f"{e.perfect_speedup * 100:+.1f}%"] for e in result.entries]
    rows.append(["GEOMEAN", "",
                 f"{result.jukebox_geomean * 100:+.1f}%",
                 f"{result.perfect_geomean * 100:+.1f}%"])
    table = format_table(
        ["Function", "baseline CPI", "Jukebox", "Perfect I-cache"], rows,
        title="Figure 10: speedup over the lukewarm baseline (Skylake-like)")
    summary = (f"Jukebox geomean {result.jukebox_geomean * 100:+.1f}% "
               f"(paper: +18.7%); perfect I$ {result.perfect_geomean * 100:+.1f}% "
               f"(paper: +31%); correlation r={result.correlation():.2f}")
    return f"{table}\n\n{summary}"
