"""Declared reproduction bands: paper value vs. acceptable measured range.

Every headline number the paper reports is declared here once, with the
band this reproduction is expected to land in (shape-level agreement; see
DESIGN.md Sec. 5).  The bands are consumed three ways:

* the benchmark suite asserts them after regenerating each figure;
* :func:`verify` checks a set of measured values programmatically;
* EXPERIMENTS.md cites them as the acceptance criteria.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional


@dataclass(frozen=True)
class Band:
    """One reproducible quantity: the paper's value and our tolerance."""

    key: str
    figure: str
    description: str
    paper_value: float
    low: float
    high: float
    unit: str = ""

    def check(self, measured: float) -> bool:
        return self.low <= measured <= self.high

    def describe(self, measured: Optional[float] = None) -> str:
        s = (f"{self.figure} {self.description}: paper {self.paper_value}"
             f"{self.unit}, band [{self.low}, {self.high}]{self.unit}")
        if measured is not None:
            status = "OK" if self.check(measured) else "OUT OF BAND"
            s += f", measured {measured:.3g}{self.unit} -> {status}"
        return s


#: The acceptance bands, keyed by a stable identifier.
BANDS: Dict[str, Band] = {band.key: band for band in [
    # -- Figure 1 ---------------------------------------------------------
    Band("fig1.saturation.auth_p", "Fig. 1",
         "Auth-P normalized CPI at IAT >= 1s", 2.70, 2.0, 3.4, "x"),
    Band("fig1.saturation.aes_n", "Fig. 1",
         "AES-N normalized CPI at IAT >= 1s", 2.50, 1.8, 3.2, "x"),
    # -- Figure 2 ---------------------------------------------------------
    Band("fig2.mean_cpi_increase", "Fig. 2",
         "mean interleaved CPI increase", 0.70, 0.40, 1.10),
    Band("fig2.min_cpi_increase", "Fig. 2",
         "minimum per-function CPI increase", 0.31, 0.15, 0.80),
    Band("fig2.max_cpi_increase", "Fig. 2",
         "maximum per-function CPI increase", 1.14, 0.60, 1.60),
    Band("fig2.frontend_ref", "Fig. 2",
         "front-end share of reference cycles", 0.51, 0.35, 0.65),
    Band("fig2.frontend_int", "Fig. 2",
         "front-end share of interleaved cycles", 0.55, 0.40, 0.72),
    # -- Figures 3/4 ------------------------------------------------------
    Band("fig3.latency_growth", "Fig. 3",
         "fetch-latency stall growth under interleaving", 0.94, 0.5, 1.6),
    Band("fig4.fetch_latency_share", "Fig. 4",
         "fetch-latency share of extra stall cycles", 0.56, 0.40, 0.80),
    # -- Figure 5 ---------------------------------------------------------
    Band("fig5.llc_ref_inst_mpki", "Fig. 5b",
         "reference LLC instruction MPKI", 0.0, 0.0, 2.0),
    Band("fig5.llc_int_inst_mpki", "Fig. 5b",
         "interleaved LLC instruction MPKI (mean)", 10.0, 6.0, 30.0),
    # -- Figure 6 ---------------------------------------------------------
    Band("fig6.footprint_min_kb", "Fig. 6a",
         "smallest mean instruction footprint", 300.0, 230.0, 420.0, "KB"),
    Band("fig6.footprint_max_kb", "Fig. 6a",
         "largest mean instruction footprint", 800.0, 600.0, 900.0, "KB"),
    Band("fig6.jaccard_mean", "Fig. 6b",
         "mean cross-invocation Jaccard index", 0.90, 0.85, 1.0),
    # -- Figure 8 ---------------------------------------------------------
    Band("fig8.metadata_min_kb", "Fig. 8",
         "smallest per-function metadata at 1KB regions", 9.6, 2.0, 16.0,
         "KB"),
    Band("fig8.metadata_max_kb", "Fig. 8",
         "largest per-function metadata at 1KB regions", 29.5, 14.0, 40.0,
         "KB"),
    # -- Figure 9 ---------------------------------------------------------
    Band("fig9.saturation_budget_kb", "Fig. 9",
         "metadata budget where speedup saturates", 16.0, 8.0, 16.0, "KB"),
    # -- Figure 10 --------------------------------------------------------
    Band("fig10.jukebox_geomean", "Fig. 10",
         "Jukebox geomean speedup", 0.187, 0.12, 0.27),
    Band("fig10.perfect_geomean", "Fig. 10",
         "perfect-I$ geomean speedup", 0.31, 0.22, 0.42),
    Band("fig10.max_perfect", "Fig. 10",
         "largest perfect-I$ speedup (Auth-N)", 0.46, 0.30, 0.65),
    # -- Figure 11 --------------------------------------------------------
    Band("fig11.go_coverage", "Fig. 11",
         "mean Go coverage", 0.82, 0.70, 1.0),
    Band("fig11.interp_coverage", "Fig. 11",
         "mean Python/NodeJS coverage", 0.61, 0.45, 0.95),
    Band("fig11.overprediction_mean", "Fig. 11",
         "mean overprediction rate", 0.10, 0.0, 0.20),
    # -- Figure 12 --------------------------------------------------------
    Band("fig12.overhead_mean", "Fig. 12",
         "mean memory-bandwidth overhead", 0.14, 0.02, 0.25),
    Band("fig12.overhead_max", "Fig. 12",
         "worst-case memory-bandwidth overhead", 0.23, 0.05, 0.40),
    # -- Figure 13 --------------------------------------------------------
    Band("fig13.pif", "Fig. 13", "PIF geomean speedup", 0.024, -0.02, 0.10),
    Band("fig13.pif_ideal", "Fig. 13",
         "PIF-ideal geomean speedup", 0.067, 0.03, 0.16),
    # -- Table 3 ----------------------------------------------------------
    Band("table3.skylake_l2", "Table 3",
         "Skylake L2-I MPKI change", -74.0, -100.0, -55.0, "%"),
    Band("table3.broadwell_l2", "Table 3",
         "Broadwell L2-I MPKI change", -15.0, -45.0, -2.0, "%"),
    Band("table3.skylake_llc", "Table 3",
         "Skylake LLC-I MPKI change", -86.0, -100.0, -65.0, "%"),
    Band("table3.broadwell_llc", "Table 3",
         "Broadwell LLC-I MPKI change", -91.0, -100.0, -65.0, "%"),
]}


@dataclass
class BandReport:
    """Outcome of verifying measured values against the declared bands."""

    checked: List[str]
    passed: List[str]
    failed: List[str]
    lines: List[str]

    @property
    def all_passed(self) -> bool:
        return not self.failed

    def render(self) -> str:
        return "\n".join(self.lines)


def verify(measured: Dict[str, float],
           keys: Optional[Iterable[str]] = None) -> BandReport:
    """Check measured values (keyed like :data:`BANDS`) against the bands.

    Unknown keys raise; missing keys are simply not checked, so callers can
    verify one figure at a time.
    """
    report = BandReport(checked=[], passed=[], failed=[], lines=[])
    selected = list(keys) if keys is not None else list(measured)
    for key in selected:
        if key not in BANDS:
            raise KeyError(f"unknown band {key!r}")
        if key not in measured:
            continue
        band = BANDS[key]
        value = measured[key]
        report.checked.append(key)
        (report.passed if band.check(value) else report.failed).append(key)
        report.lines.append(band.describe(value))
    return report
