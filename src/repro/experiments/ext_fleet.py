"""Extension: region-scale fleet capacity with and without Jukebox.

The paper's capacity claim is fleet-level: cutting frontend stalls per
invocation lets every node of a region sustain proportionally more
invocations, which compounds with keep-alive and placement policy.  This
experiment simulates a whole region (:mod:`repro.fleet`) across arrival
mixes, with Jukebox off and on, and reports the capacity uplift and tail
latency per mix plus the geomean uplift across mixes.

Every region shard is a content-addressed engine job, so the sweep is
cached, parallel under ``--jobs``, and resumes warm after a crash --
exactly like the per-figure experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.analysis.metrics import geomean
from repro.analysis.report import format_table
from repro.experiments.common import RunConfig
from repro.fleet.config import FleetConfig
from repro.fleet.region import simulate_region

#: Arrival mixes swept by default (the >= 2 mixes the battery checks).
ARRIVAL_MIXES = ("poisson", "bursty", "diurnal")


@dataclass
class FleetEntry:
    """One arrival mix: the baseline and Jukebox region aggregates."""

    arrival: str
    baseline: dict
    jukebox: dict

    @property
    def capacity_uplift(self) -> float:
        base = self.baseline["capacity_inv_s"]
        return self.jukebox["capacity_inv_s"] / base - 1.0 if base else 0.0

    @property
    def p99_baseline_ms(self) -> float:
        return self.baseline["p99_latency_ms"]

    @property
    def p99_jukebox_ms(self) -> float:
        return self.jukebox["p99_latency_ms"]


@dataclass
class FleetSweepResult:
    config: FleetConfig
    shards: int
    entries: List[FleetEntry] = field(default_factory=list)

    @property
    def geomean_uplift(self) -> float:
        if not self.entries:
            return 0.0
        return geomean([1.0 + e.capacity_uplift for e in self.entries]) - 1.0


def base_fleet(cfg: RunConfig) -> FleetConfig:
    """The swept region, scaled down under ``--fast`` (reduced traces
    signal reduced region scale the same way)."""
    fast = cfg.instruction_scale < 1.0
    return FleetConfig(
        nodes=4 if fast else 8,
        instances=160 if fast else 480,
        functions=20 if fast else 40,
        duration_ms=20_000.0 if fast else 60_000.0,
        mean_iat_ms=500.0,
        seed=cfg.seed,
    )


def run(cfg: Optional[RunConfig] = None,
        functions: Optional[Sequence[str]] = None,
        fleet: Optional[FleetConfig] = None,
        arrivals: Sequence[str] = ARRIVAL_MIXES,
        shards: int = 2) -> FleetSweepResult:
    """Sweep (arrival mix x jukebox) over one region.

    ``functions`` is accepted for runner-signature compatibility but
    ignored: region functions are the whole Table 2 suite by design.
    """
    cfg = cfg if cfg is not None else RunConfig()
    fleet = fleet if fleet is not None else base_fleet(cfg)
    result = FleetSweepResult(config=fleet, shards=shards)
    for arrival in arrivals:
        base = simulate_region(fleet.replace(arrival=arrival, jukebox=False),
                               shards=shards)
        jb = simulate_region(fleet.replace(arrival=arrival, jukebox=True),
                             shards=shards)
        result.entries.append(FleetEntry(arrival=arrival,
                                         baseline=base["region"],
                                         jukebox=jb["region"]))
    return result


def render(result: FleetSweepResult) -> str:
    rows = []
    for e in result.entries:
        rows.append([
            e.arrival,
            f"{e.baseline['capacity_inv_s']:,.0f}/s",
            f"{e.jukebox['capacity_inv_s']:,.0f}/s",
            f"{e.capacity_uplift * 100:+.1f}%",
            f"{e.p99_baseline_ms:.1f}ms",
            f"{e.p99_jukebox_ms:.1f}ms",
            f"{e.baseline['drop_fraction'] * 100:.2f}%",
        ])
    rows.append(["GEOMEAN", "", "",
                 f"{result.geomean_uplift * 100:+.1f}%", "", "", ""])
    fleet = result.config
    table = format_table(
        ["Arrival mix", "capacity base", "capacity JB", "uplift",
         "p99 base", "p99 JB", "dropped"],
        rows,
        title=(f"Extension: fleet capacity with Jukebox "
               f"({fleet.nodes} nodes x {fleet.cores_per_node} cores, "
               f"{fleet.instances} instances, {fleet.balancer})"))
    summary = (f"Region-wide geomean capacity uplift "
               f"{result.geomean_uplift * 100:+.1f}% across "
               f"{len(result.entries)} arrival mixes "
               f"({result.shards} engine shards per region)")
    return f"{table}\n\n{summary}"
