"""Table 3 (and Sec. 5.6): Jukebox's instruction-MPKI reduction on the
Skylake-like vs. Broadwell-like simulated configurations.

Protocol: both machines run in evaluation mode; Broadwell uses the larger
32KB per-phase metadata store the paper found necessary for its small
256KB L2.  Paper headlines: the LLC instruction misses are nearly
eliminated on both platforms (-86% / -91%); L2 instruction misses drop by
-74% on Skylake but only -15% on Broadwell (conflict evictions push
prefetched lines out of the small L2 before use), which is why the
Broadwell geomean speedup is ~12% vs. 18.7% on Skylake.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.analysis.metrics import geomean_speedup, percent_change, speedup
from repro.analysis.report import format_table
from repro.engine import sweep_configs
from repro.experiments.common import RunConfig
from repro.sim.params import MODE_EVALUATION, broadwell, skylake
from repro.workloads.suite import suite_subset

#: Registry configs this experiment sweeps per function (on both machines).
SWEEP_CONFIGS = ("baseline", "jukebox")


@dataclass
class Table3Row:
    machine: str
    l2_inst_reduction_pct: float
    llc_inst_reduction_pct: float
    jukebox_geomean_speedup: float


@dataclass
class Table3Result:
    rows: List[Table3Row] = field(default_factory=list)

    def row(self, machine: str) -> Table3Row:
        for r in self.rows:
            if r.machine == machine:
                return r
        raise KeyError(machine)


def run(cfg: Optional[RunConfig] = None,
        machine=None,  # unused: this experiment always compares both machines
        functions: Optional[Sequence[str]] = None) -> Table3Result:
    cfg = cfg if cfg is not None else RunConfig()
    profiles = suite_subset(list(functions) if functions else None)
    result = Table3Result()
    machines = [skylake(), broadwell(mode=MODE_EVALUATION)]
    for m in machines:
        base_l2 = base_llc = jb_l2 = jb_llc = 0.0
        speedups: List[float] = []
        runs = sweep_configs(profiles, m, cfg, SWEEP_CONFIGS)
        for profile in profiles:
            base = runs[profile.abbrev]["baseline"]
            jb = runs[profile.abbrev]["jukebox"]
            base_l2 += base.mean_mpki("l2", "inst")
            base_llc += base.mean_mpki("llc", "inst")
            jb_l2 += jb.mean_mpki("l2", "inst")
            jb_llc += jb.mean_mpki("llc", "inst")
            speedups.append(speedup(base.cycles, jb.cycles))
        result.rows.append(Table3Row(
            machine=m.name,
            l2_inst_reduction_pct=percent_change(base_l2, jb_l2),
            llc_inst_reduction_pct=percent_change(base_llc, jb_llc),
            jukebox_geomean_speedup=geomean_speedup(speedups),
        ))
    return result


def render(result: Table3Result) -> str:
    rows = [[r.machine.capitalize(),
             f"{r.l2_inst_reduction_pct:+.0f}%",
             f"{r.llc_inst_reduction_pct:+.0f}%",
             f"{r.jukebox_geomean_speedup * 100:+.1f}%"] for r in result.rows]
    table = format_table(
        ["Machine", "L2 inst misses", "LLC inst misses", "JB speedup"],
        rows,
        title=("Table 3: reduction in instruction MPKI with Jukebox "
               "(paper: Skylake -74%/-86%; Broadwell -15%/-91%; "
               "Broadwell speedup ~12%)"))
    return table
