"""Extension: server-level throughput improvement from Jukebox.

The abstract claims the 18.7% per-invocation speedup "translates into a
corresponding throughput improvement": a lukewarm server is CPU-bound on
invocation processing, so cutting cycles per invocation raises the maximum
sustainable invocation rate proportionally.

This experiment quantifies that claim end-to-end: it measures steady-state
cycles per invocation for the whole suite in the lukewarm baseline and with
Jukebox, converts them into invocations/second for an n-core server at the
simulated clock, and reports the capacity uplift (plus the service-time
side of the latency story).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.analysis.metrics import geomean
from repro.analysis.report import format_table
from repro.engine import sweep_configs
from repro.experiments.common import RunConfig
from repro.sim.params import MachineParams, skylake

#: Registry configs this experiment sweeps per function.
SWEEP_CONFIGS = ("baseline", "jukebox")


@dataclass
class ThroughputEntry:
    abbrev: str
    baseline_cycles: float
    jukebox_cycles: float

    def rate_per_core(self, freq_ghz: float, which: str) -> float:
        """Sustainable invocations/second on one core."""
        cycles = self.baseline_cycles if which == "baseline" \
            else self.jukebox_cycles
        return freq_ghz * 1e9 / cycles

    @property
    def capacity_uplift(self) -> float:
        return self.baseline_cycles / self.jukebox_cycles - 1.0

    def service_time_us(self, freq_ghz: float, which: str) -> float:
        cycles = self.baseline_cycles if which == "baseline" \
            else self.jukebox_cycles
        return cycles / (freq_ghz * 1e3)


@dataclass
class ThroughputResult:
    cores: int
    freq_ghz: float
    entries: List[ThroughputEntry] = field(default_factory=list)

    @property
    def geomean_uplift(self) -> float:
        return geomean([1.0 + e.capacity_uplift for e in self.entries]) - 1.0

    def server_rate(self, which: str) -> float:
        """Aggregate invocations/second with cores spread evenly over the
        suite (each function gets cores/len share)."""
        if not self.entries:
            return 0.0
        share = self.cores / len(self.entries)
        return sum(e.rate_per_core(self.freq_ghz, which) * share
                   for e in self.entries)


def run(cfg: Optional[RunConfig] = None,
        machine: Optional[MachineParams] = None,
        functions: Optional[Sequence[str]] = None,
        cores: int = 10) -> ThroughputResult:
    from repro.workloads.suite import suite_subset

    cfg = cfg if cfg is not None else RunConfig()
    machine = machine if machine is not None else skylake()
    result = ThroughputResult(cores=cores, freq_ghz=machine.core.freq_ghz)
    profiles = suite_subset(list(functions) if functions else None)
    runs = sweep_configs(profiles, machine, cfg, SWEEP_CONFIGS)
    for profile in profiles:
        base = runs[profile.abbrev]["baseline"]
        jb = runs[profile.abbrev]["jukebox"]
        n = len(base.results)
        result.entries.append(ThroughputEntry(
            abbrev=profile.abbrev,
            baseline_cycles=base.cycles / n,
            jukebox_cycles=jb.cycles / n,
        ))
    return result


def render(result: ThroughputResult) -> str:
    freq = result.freq_ghz
    rows = []
    for e in result.entries:
        rows.append([
            e.abbrev,
            f"{e.service_time_us(freq, 'baseline'):.0f}us",
            f"{e.service_time_us(freq, 'jukebox'):.0f}us",
            f"{e.rate_per_core(freq, 'baseline'):,.0f}/s",
            f"{e.rate_per_core(freq, 'jukebox'):,.0f}/s",
            f"{e.capacity_uplift * 100:+.1f}%",
        ])
    rows.append(["GEOMEAN", "", "", "", "",
                 f"{result.geomean_uplift * 100:+.1f}%"])
    table = format_table(
        ["Function", "svc time base", "svc time JB",
         "rate/core base", "rate/core JB", "capacity"],
        rows,
        title=(f"Extension: lukewarm server capacity with Jukebox "
               f"({result.cores} cores @ {freq}GHz)"))
    summary = (f"Server-wide: {result.server_rate('baseline'):,.0f} -> "
               f"{result.server_rate('jukebox'):,.0f} invocations/s "
               f"({result.geomean_uplift * 100:+.1f}% geomean capacity; the "
               f"abstract's 'corresponding throughput improvement')")
    return f"{table}\n\n{summary}"
