"""Setuptools shim.

Keeps ``pip install -e .`` working on minimal offline environments where the
``wheel`` package (required by the PEP 660 editable-install path) is not
available: with no ``[build-system]`` table in pyproject.toml, pip falls
back to the legacy ``setup.py develop`` code path, which has no wheel
dependency.  All project metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
